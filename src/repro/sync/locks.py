"""Distributed exclusive locks.

Each lock has a statically assigned owner (``lock_id mod nprocs``).
Acquiring processors send a request to the owner, who forwards it to the
node it last sent the lock token to; requests chain into a distributed
FIFO queue (the owner always forwards to the *latest* requester, so the
token traverses requesters in order).  The grant message carries
whatever consistency payload the protocol attaches (write notices and,
for the hybrid/update protocols, diffs).

A node that releases a lock nobody wants keeps the token, so
re-acquiring the same lock is free of communication — the property the
paper credits the lazy protocols with exploiting heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.mem.timestamps import VectorClock
from repro.net.message import Message, MsgKind
from repro.sim.engine import SimulationError
from repro.sim.events import Event


@dataclass
class _LockState:
    """One node's view of one lock."""

    has_token: bool = False
    held: bool = False
    # Requests queued here while we hold the token.
    queue: List[Tuple[int, VectorClock]] = field(default_factory=list)
    # Forwards that arrived before the token did.
    early_forwards: List[Tuple[int, VectorClock]] = field(
        default_factory=list)
    # Where we sent the token when we gave it away.
    last_granted_to: Optional[int] = None
    # Owner only: who we last forwarded a request to (the tail of the
    # distributed queue).
    probable_tail: Optional[int] = None
    # Event the local acquirer is waiting on.
    waiting: Optional[Event] = None
    # Local threads waiting for an intra-node handoff (multithreaded
    # nodes): the lock passes between threads without any messages or
    # consistency actions (same processor, same memory).
    local_waiters: List[Event] = field(default_factory=list)


class LockManager:
    """Per-node lock protocol engine.

    ``broadcast=True`` enables the ablation the paper alludes to in
    its conclusions ("without resorting to broadcast, it appears
    impossible to reduce the number of messages required for lock
    acquisition"): the acquirer broadcasts its request to every other
    node; whoever holds (or is about to hold) the token responds,
    cutting the request path to one hop at the price of n-1 request
    messages on a point-to-point network."""

    def __init__(self, node, broadcast: bool = False) -> None:
        self.node = node
        self.sim = node.sim
        self.broadcast = broadcast
        self._locks: Dict[int, _LockState] = {}

    def _state(self, lock_id: int) -> _LockState:
        state = self._locks.get(lock_id)
        if state is None:
            owner = self.node.machine.lock_owner(lock_id)
            state = _LockState()
            if owner == self.node.proc:
                state.has_token = True
                state.probable_tail = self.node.proc
            self._locks[lock_id] = state
        return state

    # -- application-side operations ------------------------------------

    def acquire(self, lock_id: int) -> Generator:
        """Acquire ``lock_id``; blocks until granted.  Applies the
        protocol's consistency actions before returning."""
        node = self.node
        state = self._state(lock_id)
        if state.held or state.waiting is not None:
            if not node.multithreaded:
                problem = ("re-acquiring held"
                           if state.held else "double-acquiring")
                raise SimulationError(
                    f"proc {node.proc} {problem} lock {lock_id}")
            # Another thread of this node holds (or is fetching) the
            # lock: wait for the intra-node handoff.
            handoff = self.sim.event(f"lock-{lock_id}-handoff")
            state.local_waiters.append(handoff)
            yield handoff
            node.metrics.lock_acquires += 1
            node.metrics.lock_local_acquires += 1
            node.ins.lock_acquires.inc()
            node.ins.lock_local_acquires.inc()
            return
        if state.has_token and not state.queue:
            # Token cached locally and nobody queued: free re-acquire.
            state.held = True
            node.metrics.lock_acquires += 1
            node.metrics.lock_local_acquires += 1
            node.ins.lock_acquires.inc()
            node.ins.lock_local_acquires.inc()
            return
        state.waiting = self.sim.event("lock-grant")
        if self.broadcast:
            if node.tracer:
                node.tracer.emit("sync.lock_request", lock=lock_id,
                                 node=node.proc, target=None)
            yield from self._broadcast_request(lock_id, state)
            yield from self._finish_acquire(node, state)
            return
        owner = node.machine.lock_owner(lock_id)
        if owner == node.proc:
            # We are the owner but the token is elsewhere: forward the
            # request straight down the chain.
            target = state.probable_tail
            state.probable_tail = node.proc
            if node.tracer:
                node.tracer.emit("sync.lock_request", lock=lock_id,
                                 node=node.proc, target=target)
            yield from node.app_send(Message(
                src=node.proc, dst=target, kind=MsgKind.LOCK_FWD,
                payload={"lock": lock_id, "requester": node.proc,
                         "vc": node.vc}))
        else:
            if node.tracer:
                node.tracer.emit("sync.lock_request", lock=lock_id,
                                 node=node.proc, target=owner)
            yield from node.app_send(Message(
                src=node.proc, dst=owner, kind=MsgKind.LOCK_REQ,
                payload={"lock": lock_id, "requester": node.proc,
                         "vc": node.vc}))
        yield from self._finish_acquire(node, state)

    #: Broadcast mode: rebroadcast period if no grant arrived (the
    #: token can be in flight past every copy of the request).
    BROADCAST_RETRY_CYCLES = 100_000.0

    def _broadcast_request(self, lock_id: int,
                           state: _LockState) -> Generator:
        node = self.node
        for target in range(node.config.nprocs):
            if target == node.proc:
                continue
            yield from node.app_send(Message(
                src=node.proc, dst=target, kind=MsgKind.LOCK_REQ,
                payload={"lock": lock_id, "requester": node.proc,
                         "vc": node.vc, "broadcast": True}))
        waiting = state.waiting

        def watchdog():
            while not waiting.triggered:
                yield node.sim.timeout(self.BROADCAST_RETRY_CYCLES)
                if waiting.triggered or state.waiting is not waiting:
                    return
                for target in range(node.config.nprocs):
                    if target != node.proc:
                        node.handler_send(Message(
                            src=node.proc, dst=target,
                            kind=MsgKind.LOCK_REQ,
                            payload={"lock": lock_id,
                                     "requester": node.proc,
                                     "vc": node.vc,
                                     "broadcast": True}))

        node.sim.spawn(watchdog(), name=f"lock-{lock_id}-watchdog")

    def _finish_acquire(self, node, state: _LockState) -> Generator:
        grant = yield state.waiting
        state.waiting = None
        # The token has arrived: take ownership *before* running the
        # protocol's (possibly blocking) consistency actions, so
        # forwards arriving meanwhile queue here instead of dead-ending.
        state.has_token = True
        state.held = True
        # Requesters queued behind us travel with the token; forwards
        # that raced ahead of the token chain after them.
        state.queue.extend(grant.get("queue", ()))
        state.queue.extend(state.early_forwards)
        state.early_forwards = []
        yield from node.protocol.apply_grant(grant["payload"])
        node.metrics.lock_acquires += 1
        node.ins.lock_acquires.inc()

    def release(self, lock_id: int) -> Generator:
        """Release ``lock_id``: run the protocol's release-side actions
        (seal the interval; eager protocols flush), then pass the token
        to the next queued requester, if any."""
        node = self.node
        state = self._state(lock_id)
        if not state.held:
            raise SimulationError(
                f"proc {node.proc} releasing unheld lock {lock_id}")
        if node.tracer:
            node.tracer.emit("sync.lock_release", lock=lock_id,
                             node=node.proc)
        if state.local_waiters:
            # Intra-node handoff: the lock stays held by this node and
            # no consistency information needs to move (same memory).
            if node.tracer:
                node.tracer.emit("sync.lock_handoff", lock=lock_id,
                                 node=node.proc)
            state.local_waiters.pop(0).succeed()
            return
        yield from node.protocol.on_release()
        state.held = False
        if state.queue:
            requester, requester_vc = state.queue.pop(0)
            remainder, state.queue = state.queue, []
            yield from self._grant_from_app(lock_id, state, requester,
                                            requester_vc, remainder)

    def _grant_from_app(self, lock_id: int, state: _LockState,
                        requester: int, requester_vc: VectorClock,
                        remainder: List[Tuple[int, VectorClock]]
                        ) -> Generator:
        payload, data_bytes = self.node.protocol.grant_payload(
            requester, requester_vc, lock_id=lock_id)
        state.has_token = False
        state.last_granted_to = requester
        if self.node.tracer:
            self.node.tracer.emit("sync.lock_grant", lock=lock_id,
                                  node=self.node.proc, to=requester)
        yield from self.node.app_send(Message(
            src=self.node.proc, dst=requester, kind=MsgKind.LOCK_GRANT,
            payload={"lock": lock_id, "payload": payload,
                     "queue": remainder},
            data_bytes=data_bytes))

    # -- crash checkpoint/restore ------------------------------------------

    def checkpoint_state(self) -> Dict[int, dict]:
        """Serializable snapshot of every lock's token/queue state.

        Live :class:`~repro.sim.events.Event` objects (``waiting``,
        ``local_waiters``) are deliberately excluded: they belong to
        continuations frozen by the lifecycle manager and are carried
        across the outage by :meth:`restore_state`.  Vector clocks are
        immutable and shared by reference."""
        return {
            lock_id: {
                "has_token": state.has_token,
                "held": state.held,
                "queue": list(state.queue),
                "early_forwards": list(state.early_forwards),
                "last_granted_to": state.last_granted_to,
                "probable_tail": state.probable_tail,
            }
            for lock_id, state in self._locks.items()}

    def restore_state(self, snapshot: Dict[int, dict]) -> None:
        """Regenerate lock-token state from a crash checkpoint.

        Existing ``_LockState`` objects keep their identity (frozen
        acquire continuations hold references to them) and their live
        events; every data field is overwritten from the snapshot.
        A token-audit pass re-validates the restored invariants so an
        incomplete snapshot fails loudly instead of deadlocking."""
        for lock_id in list(self._locks):
            if lock_id not in snapshot:
                del self._locks[lock_id]
        for lock_id, data in snapshot.items():
            state = self._locks.get(lock_id)
            if state is None:
                state = _LockState()
                self._locks[lock_id] = state
            state.has_token = data["has_token"]
            state.held = data["held"]
            state.queue = list(data["queue"])
            state.early_forwards = list(data["early_forwards"])
            state.last_granted_to = data["last_granted_to"]
            state.probable_tail = data["probable_tail"]
        for lock_id, state in self._locks.items():
            if state.held and not state.has_token:
                raise SimulationError(
                    f"restored lock {lock_id} is held without its "
                    "token")
            if state.queue and not state.has_token:
                raise SimulationError(
                    f"restored lock {lock_id} queues requesters "
                    "without holding the token")

    # -- message handlers --------------------------------------------------

    def handle(self, message: Message) -> None:
        kind = message.kind
        payload = message.payload
        if kind == MsgKind.LOCK_REQ:
            self._handle_request(payload)
        elif kind == MsgKind.LOCK_FWD:
            self._handle_forward(payload)
        elif kind == MsgKind.LOCK_GRANT:
            self._handle_grant(message)
        else:  # pragma: no cover - dispatch guarantees
            raise SimulationError(f"lock manager got {message}")

    def _handle_request(self, payload: dict) -> None:
        """Owner-side: route the request to the tail of the queue."""
        node = self.node
        lock_id = payload["lock"]
        requester = payload["requester"]
        node.observe_peer_vc(requester, payload["vc"])
        state = self._state(lock_id)
        if payload.get("broadcast"):
            # Broadcast mode: only the node physically holding the
            # token responds (unique acceptance — a waiter must stay
            # silent or two nodes would queue the same request).  A
            # request that lands while the token is in flight is
            # dropped and recovered by the requester's rebroadcast.
            if state.has_token:
                self._accept_request(lock_id, state, requester,
                                     payload["vc"])
            return
        if node.machine.lock_owner(lock_id) != node.proc:
            raise SimulationError(
                f"proc {node.proc} got LOCK_REQ for lock {lock_id} "
                "it does not own")
        tail = state.probable_tail
        state.probable_tail = requester
        if tail == node.proc:
            self._accept_request(lock_id, state, requester,
                                 payload["vc"])
        else:
            node.handler_send(Message(
                src=node.proc, dst=tail, kind=MsgKind.LOCK_FWD,
                payload=payload))

    def _handle_forward(self, payload: dict) -> None:
        node = self.node
        lock_id = payload["lock"]
        requester = payload["requester"]
        node.observe_peer_vc(requester, payload["vc"])
        state = self._state(lock_id)
        if not state.has_token and state.waiting is None:
            # The token already moved on; chase it.
            target = state.last_granted_to
            if target is None:
                raise SimulationError(
                    f"proc {node.proc} cannot route forward for lock "
                    f"{lock_id}")
            node.handler_send(Message(
                src=node.proc, dst=target, kind=MsgKind.LOCK_FWD,
                payload=payload))
            return
        self._accept_request(lock_id, state, requester, payload["vc"])

    def _accept_request(self, lock_id: int, state: _LockState,
                        requester: int,
                        requester_vc: VectorClock) -> None:
        """We are (or will be) the token holder: grant now or queue."""
        node = self.node
        if self.broadcast:
            # Rebroadcasts can duplicate a request we already queued.
            if (any(r == requester for r, _vc in state.queue)
                    or any(r == requester
                           for r, _vc in state.early_forwards)):
                return
        if state.waiting is not None and not state.has_token:
            # We are ourselves waiting for the token; the request must
            # wait until it arrives (it chains behind us).
            state.early_forwards.append((requester, requester_vc))
            return
        if state.held or state.queue:
            state.queue.append((requester, requester_vc))
            return
        # Token idle here: grant immediately from handler context.
        payload, data_bytes = node.protocol.grant_payload(
            requester, requester_vc, lock_id=lock_id)
        state.has_token = False
        state.last_granted_to = requester
        if node.tracer:
            node.tracer.emit("sync.lock_grant", lock=lock_id,
                             node=node.proc, to=requester)
        node.handler_send(Message(
            src=node.proc, dst=requester, kind=MsgKind.LOCK_GRANT,
            payload={"lock": lock_id, "payload": payload, "queue": []},
            data_bytes=data_bytes))

    def _handle_grant(self, message: Message) -> None:
        payload = message.payload
        state = self._state(payload["lock"])
        if state.waiting is None:
            raise SimulationError(
                f"proc {self.node.proc} got unsolicited grant of lock "
                f"{payload['lock']}")
        if self.node.tracer:
            self.node.tracer.emit("sched.wake", node=self.node.proc,
                                  kind="lock_grant",
                                  cause=message.msg_id,
                                  lock=payload["lock"])
        state.waiting.succeed(payload)
