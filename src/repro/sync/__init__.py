"""Synchronization substrate: distributed locks and barriers."""

from repro.sync.barriers import BarrierManager
from repro.sync.locks import LockManager

__all__ = ["BarrierManager", "LockManager"]
