"""Trace replay: re-issue a recorded operation stream as an app.

The replayed run performs the *same* shared-memory requests the
recorded program made — reads fault the same pages, writes store the
recorded values, locks and barriers synchronize identically — so it
can be re-simulated under any protocol or network.  What it cannot do
is change its mind: value-dependent control flow (how many nodes TSP
explored, which queue item a Cholesky worker popped) is frozen at
recording time.  That gap between trace-driven and execution-driven
simulation is precisely why the paper used the latter.
"""

from __future__ import annotations

from typing import Dict, Generator

import numpy as np

from repro.apps.base import Application
from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult
from repro.trace.events import Trace


class TraceReplayApp(Application):
    """Replays a :class:`Trace` captured by ``record_app``."""

    name = "trace-replay"

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def setup(self, machine: Machine) -> Dict[str, object]:
        if machine.config.nprocs != self.trace.nprocs:
            raise ValueError(
                f"trace was recorded on {self.trace.nprocs} procs, "
                f"machine has {machine.config.nprocs}")
        segments = {}
        for spec in self.trace.segments:
            init = None if spec.init is None else np.array(spec.init)
            segments[spec.name] = machine.allocate(
                spec.name, spec.nwords, init=init, owner=spec.owner)
        return segments

    def worker(self, api: DsmApi, proc: int,
               segments: Dict[str, object]) -> Generator:
        checksum = 0.0
        for op in self.trace.ops_for(proc):
            if op.kind == "compute":
                yield from api.compute(op.a)
            elif op.kind == "read":
                values = yield from api.read_region(
                    segments[op.segment], int(op.a), op.b)
                checksum += float(values.sum())
            elif op.kind == "write":
                yield from api.write_region(
                    segments[op.segment], int(op.a), op.b,
                    np.array(op.values))
            elif op.kind == "acquire":
                yield from api.acquire(int(op.a))
            elif op.kind == "release":
                yield from api.release(int(op.a))
            elif op.kind == "barrier":
                yield from api.barrier(int(op.a))
        return checksum


def replay_trace(trace: Trace, config, protocol: str = "lh",
                 lock_broadcast: bool = False) -> RunResult:
    """Re-simulate a recorded trace under any protocol/network."""
    from repro.core.runner import run_app
    return run_app(TraceReplayApp(trace), config, protocol=protocol,
                   lock_broadcast=lock_broadcast)
