"""Shared-memory trace recording, replay, and persistence."""

from repro.trace.events import SegmentSpec, Trace, TraceOp
from repro.trace.recorder import RecordingApi, record_app
from repro.trace.replay import TraceReplayApp, replay_trace
from repro.trace.serialize import (load_trace, save_trace,
                                   trace_from_dict, trace_to_dict)

__all__ = [
    "RecordingApi", "SegmentSpec", "Trace", "TraceOp",
    "TraceReplayApp", "load_trace", "record_app", "replay_trace",
    "save_trace", "trace_from_dict", "trace_to_dict",
]
