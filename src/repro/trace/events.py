"""Trace representation: one operation per shared-memory event.

A trace captures everything one processor asked of the DSM — region
reads/writes (with the written values), lock and barrier operations,
and computation — in program order.  Replaying it re-issues the same
requests, which makes traces useful for:

- deterministic regression tests (same trace, same simulated time);
- cheap what-if studies (replay one recording under every protocol or
  network without re-running the application logic);
- demonstrating the classic limitation that made the paper choose
  *execution-driven* simulation: a trace freezes value-dependent
  control flow (e.g. TSP's pruning decisions), so replaying it under a
  protocol with different staleness behaviour reproduces the recorded
  program's decisions, not the decisions the program would have made.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation.

    ``kind`` is one of: ``compute``, ``read``, ``write``, ``acquire``,
    ``release``, ``barrier``.  ``a``/``b`` are word offsets for memory
    operations, the lock/barrier id otherwise (in ``a``); ``values``
    holds written data; ``segment`` names the shared segment.
    """

    kind: str
    a: float = 0
    b: int = 0
    segment: str = ""
    values: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("compute", "read", "write", "acquire",
                             "release", "barrier"):
            raise ValueError(f"unknown trace op kind {self.kind!r}")


@dataclass(frozen=True)
class SegmentSpec:
    """Enough to re-allocate a recorded segment on a fresh machine."""

    name: str
    nwords: int
    owner: object = "striped"
    init: Optional[Tuple[float, ...]] = None


@dataclass
class Trace:
    """A complete recording: the shared segments plus one operation
    list per processor."""

    nprocs: int
    segments: List[SegmentSpec] = field(default_factory=list)
    ops: Dict[int, List[TraceOp]] = field(default_factory=dict)

    def ops_for(self, proc: int) -> List[TraceOp]:
        return self.ops.get(proc, [])

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.ops.values())

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for ops in self.ops.values():
            for op in ops:
                kinds[op.kind] = kinds.get(op.kind, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return (f"<Trace {self.nprocs} procs, "
                f"{len(self.segments)} segments, {parts}>")
