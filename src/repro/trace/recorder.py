"""Recording wrapper around :class:`repro.core.api.DsmApi`.

``RecordingApi`` duck-types the application API: every operation is
appended to the trace, then delegated to the real DSM.  Use
:func:`record_app` to capture a whole application run.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult
from repro.trace.events import SegmentSpec, Trace, TraceOp


class RecordingApi:
    """DsmApi stand-in that logs every call into a :class:`Trace`."""

    def __init__(self, api: DsmApi, trace: Trace) -> None:
        self._api = api
        self._trace = trace
        self.proc = api.proc
        self.nprocs = api.nprocs
        self._ops = trace.ops.setdefault(api.proc, [])

    # -- shared data ----------------------------------------------------

    def read_region(self, segment, start: int, end: int) -> Generator:
        self._ops.append(TraceOp("read", a=start, b=end,
                                 segment=segment.name))
        values = yield from self._api.read_region(segment, start, end)
        return values

    def write_region(self, segment, start: int, end: int,
                     values) -> Generator:
        if np.isscalar(values):
            recorded = tuple([float(values)] * (end - start))
        else:
            recorded = tuple(float(v) for v in values)
        self._ops.append(TraceOp("write", a=start, b=end,
                                 segment=segment.name,
                                 values=recorded))
        yield from self._api.write_region(segment, start, end, values)

    def read(self, segment, index: int) -> Generator:
        value = yield from self.read_region(segment, index, index + 1)
        return float(value[0])

    def write(self, segment, index: int, value: float) -> Generator:
        yield from self.write_region(segment, index, index + 1,
                                     np.array([value]))

    def touch(self, segment, start: int, end: int) -> Generator:
        self._ops.append(TraceOp("read", a=start, b=end,
                                 segment=segment.name))
        yield from self._api.touch(segment, start, end)

    # -- synchronization ---------------------------------------------------

    def acquire(self, lock_id: int) -> Generator:
        self._ops.append(TraceOp("acquire", a=lock_id))
        yield from self._api.acquire(lock_id)

    def release(self, lock_id: int) -> Generator:
        self._ops.append(TraceOp("release", a=lock_id))
        yield from self._api.release(lock_id)

    def barrier(self, barrier_id: int) -> Generator:
        self._ops.append(TraceOp("barrier", a=barrier_id))
        yield from self._api.barrier(barrier_id)

    # -- computation ----------------------------------------------------------

    def compute(self, cycles: float) -> Generator:
        self._ops.append(TraceOp("compute", a=float(cycles)))
        yield from self._api.compute(cycles)

    @property
    def now(self) -> float:
        return self._api.now


class _RecordingMachine:
    """Proxy that records segment allocations."""

    def __init__(self, machine: Machine, trace: Trace) -> None:
        self._machine = machine
        self._trace = trace

    def allocate(self, name: str, nwords: int, init=None,
                 owner="striped"):
        spec = SegmentSpec(
            name=name, nwords=nwords, owner=owner,
            init=None if init is None else tuple(float(v)
                                                 for v in init))
        self._trace.segments.append(spec)
        return self._machine.allocate(name, nwords, init=init,
                                      owner=owner)

    def __getattr__(self, attribute):
        return getattr(self._machine, attribute)


def record_app(app, config, protocol: str = "lh"):
    """Run ``app`` while recording its trace.  Returns
    ``(trace, run_result)``."""
    machine = Machine(config, protocol=protocol)
    trace = Trace(nprocs=config.nprocs)
    shared = app.setup(_RecordingMachine(machine, trace))

    def factory(proc: int):
        api = RecordingApi(DsmApi(machine.nodes[proc]), trace)
        return app.worker(api, proc, shared)

    result = machine.run(factory, app=app.name)
    app.finish(machine, shared, result)
    return trace, result
