"""Trace persistence: save/load recorded traces as JSON.

Lets a trace be captured once (the expensive execution-driven run) and
re-simulated across sessions — e.g. by a benchmarking pipeline that
sweeps protocols and networks over a fixed workload file.
"""

from __future__ import annotations

import json
from typing import IO, Union

from repro.trace.events import SegmentSpec, Trace, TraceOp

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    return {
        "version": FORMAT_VERSION,
        "nprocs": trace.nprocs,
        "segments": [
            {"name": s.name, "nwords": s.nwords,
             "owner": s.owner,
             "init": list(s.init) if s.init is not None else None}
            for s in trace.segments],
        "ops": {
            str(proc): [
                {"kind": op.kind, "a": op.a, "b": op.b,
                 "segment": op.segment,
                 "values": (list(op.values)
                            if op.values is not None else None)}
                for op in ops]
            for proc, ops in trace.ops.items()},
    }


def trace_from_dict(data: dict) -> Trace:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version}")
    trace = Trace(nprocs=data["nprocs"])
    for seg in data["segments"]:
        owner = seg["owner"]
        trace.segments.append(SegmentSpec(
            name=seg["name"], nwords=seg["nwords"], owner=owner,
            init=(tuple(seg["init"])
                  if seg["init"] is not None else None)))
    for proc_text, ops in data["ops"].items():
        trace.ops[int(proc_text)] = [
            TraceOp(kind=op["kind"], a=op["a"], b=op["b"],
                    segment=op["segment"],
                    values=(tuple(op["values"])
                            if op["values"] is not None else None))
            for op in ops]
    return trace


def save_trace(trace: Trace, target: Union[str, IO]) -> None:
    """Write a trace as JSON to a path or open file object."""
    data = trace_to_dict(trace)
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(data, handle)
    else:
        json.dump(data, target)


def load_trace(source: Union[str, IO]) -> Trace:
    """Read a trace saved by :func:`save_trace`."""
    if isinstance(source, str):
        with open(source) as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    return trace_from_dict(data)
