"""The DSM protocols: the paper's five release-consistent
multiple-writer protocols plus the Ivy-style sequentially-consistent
single-writer baseline ('sc') they were invented to beat."""

from repro.protocols.base import (BaseProtocol, ConsistencyInfo,
                                  ProtocolError)
from repro.protocols.eager import EagerInvalidate, EagerUpdate
from repro.protocols.lazy import LazyHybrid, LazyInvalidate, LazyUpdate
from repro.protocols.registry import (ALL_PROTOCOL_NAMES,
                                      PROTOCOL_NAMES, create_protocol,
                                      protocol_class)
from repro.protocols.sc import SequentialInvalidate

__all__ = [
    "ALL_PROTOCOL_NAMES", "BaseProtocol", "ConsistencyInfo",
    "EagerInvalidate", "EagerUpdate", "LazyHybrid", "LazyInvalidate",
    "LazyUpdate", "PROTOCOL_NAMES", "ProtocolError",
    "SequentialInvalidate", "create_protocol", "protocol_class",
]
