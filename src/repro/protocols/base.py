"""Shared machinery for the five multiple-writer RC protocols.

Terminology (paper sections 2-4):

- an *interval* is the span between synchronization events on one
  processor; sealing an interval creates diffs for every page written
  in it and assigns them the interval's vector time;
- a *write notice* announces "processor p modified page g in interval
  i"; its vector time orders it under happened-before-1;
- the *concurrent last modifiers* of a page (w.r.t. one node's pending
  notices) are the processors whose latest modification is not ordered
  before any other known modification; a lazy access miss contacts
  exactly those processors (2m messages, Table 1).

Data-race-freedom assumption: like the original protocols, correctness
of value propagation relies on the program being properly labelled
(conflicting accesses ordered by synchronization).  The simulator's
applications are; the property tests exercise the invariant directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mem.diffs import Diff
from repro.mem.intervals import (IntervalId, IntervalRecord, WriteNotice)
from repro.mem.pages import PageCopy
from repro.mem.timestamps import VectorClock
from repro.net.message import Message, MsgKind
from repro.sim.engine import SimulationError


@dataclass
class ConsistencyInfo:
    """Write notices (as interval records) plus optional diffs,
    piggybacked on lock grants and barrier departures."""

    sender_vc: VectorClock
    records: List[IntervalRecord] = field(default_factory=list)
    diffs: List[Tuple[IntervalId, Diff]] = field(default_factory=list)

    @property
    def data_bytes(self) -> int:
        # Write notices are consistency information and travel free of
        # charge (paper section 5.3); only diffs count as data.
        return sum(diff.size_bytes for _iid, diff in self.diffs)


class ProtocolError(SimulationError):
    """A protocol invariant was violated."""


class BaseProtocol:
    """Common state and helpers; subclasses pick the policy points."""

    name = "base"
    is_lazy = False

    #: A locally valid page copy satisfies an access with no protocol
    #: action — lets the API layer (repro.core.api) skip the
    #: ensure_valid generator on the no-miss fast path.  SC overrides
    #: the write flag: writing there needs ownership, not validity.
    valid_copy_serves_reads = True
    valid_copy_serves_writes = True

    #: Policy knobs settable through ``configure`` (ablation studies).
    TUNABLES = ("price_diffs_as_pages",)

    #: Whether :mod:`repro.mem.checkpoint` can serialize this
    #: protocol's consistency state (the base orphan/own/unpropagated
    #: dicts and the barrier clock).  Subclasses carrying state the
    #: RCKP format does not cover must opt out, which turns node-crash
    #: faults into an explicit configuration error instead of a
    #: silently incomplete restore.
    supports_checkpoint = True

    def __init__(self, node) -> None:
        self.node = node
        # Ablation: charge every diff at full page size, modelling a
        # DSM without run-length encoding (data volume only; the
        # multiple-writer merge still needs the word-level content).
        self.price_diffs_as_pages = False
        # Notices for pages we hold no copy of (merged in at install):
        # page -> {interval id: notice}.  One dict doubles as ordered
        # list (insertion order) and O(1) dedup set.
        self.orphan_notices: Dict[int, Dict[IntervalId,
                                            WriteNotice]] = {}
        # Own intervals that modified each page (indices, ascending).
        self.own_page_intervals: Dict[int, List[int]] = {}
        # Own modifications not yet flushed/pushed to other cachers:
        # interval id -> set of pages still to propagate.
        self.unpropagated: Dict[IntervalId, Set[int]] = {}
        # Pages written since the last seal (superset index: sealing
        # re-checks copy.dirty).  Lets seal_interval visit only written
        # pages instead of scanning the whole page table.
        self._dirty_pages: Set[int] = set()
        # Vector clock reached by the last global barrier.
        self.last_barrier_vc = VectorClock.zero(node.config.nprocs)

    def configure(self, **options) -> None:
        """Set ablation knobs; unknown names raise."""
        for name, value in options.items():
            if name not in self.TUNABLES:
                raise ValueError(
                    f"{self.name} has no tunable {name!r}; choose "
                    f"from {sorted(self.TUNABLES)}")
            setattr(self, name, value)

    def diff_bytes(self, diff: Diff) -> int:
        """Accounting size of one diff (page-priced under ablation)."""
        if self.price_diffs_as_pages:
            return self.node.config.page_size
        return diff.size_bytes

    # ------------------------------------------------------------------
    # interval sealing and diff management
    # ------------------------------------------------------------------

    def seal_interval(self) -> float:
        """End the current interval: create a diff for every dirty page
        and log the interval.  Returns the cycle cost to charge."""
        node = self.node
        dirty_pages = self._dirty_pages
        if not dirty_pages:
            return 0.0
        copies = node.pagetable.copies
        dirty = []
        for page in sorted(dirty_pages):
            copy = copies.get(page)
            if copy is not None and copy.dirty:
                dirty.append((page, copy))
        dirty_pages.clear()
        if not dirty:
            return 0.0
        if node.config.nprocs == 1:
            # Single processor: nobody to merge with, so a real system
            # would never write-fault or diff (this run is the plain
            # sequential baseline used as the speedup denominator).
            for _page, copy in dirty:
                copy.take_written_ranges()
            return 0.0
        node.vc = node.vc.incremented(node.proc)
        index = node.vc[node.proc]
        pending_ranges: Dict[int, List[Tuple[int, int]]] = {}
        cost = 0.0
        per_diff_cost = node.diff_creation_cost()
        word_size = node.config.word_size
        words_created = 0
        for page, copy in dirty:
            ranges = copy.take_written_ranges()
            pending_ranges[page] = ranges
            # record_write keeps the ranges normalized incrementally.
            # One byte-slice per run off the copy's flat buffer.
            diff = Diff.from_ranges(page, copy, ranges,
                                    word_size=word_size,
                                    assume_normalized=True)
            node.diff_store.put(node.proc, index, diff)
            copy.mark_applied(node.proc, index)
            self.own_page_intervals.setdefault(page, []).append(index)
            words_created += diff.word_count
            cost += per_diff_cost
        created = len(dirty)
        node.metrics.diffs_created += created
        node.metrics.diff_words_created += words_created
        node.ins.diffs_created.value += created
        node.ins.diff_words.value += words_created
        record = IntervalRecord(proc=node.proc, index=index, vc=node.vc,
                                pages=frozenset(pending_ranges),
                                pending_ranges=pending_ranges)
        node.interval_log.add(record)
        node.ins.notices_created.value += len(record.pages)
        if node.tracer:
            node.tracer.emit("protocol.seal", node=node.proc,
                             interval=index, pages=len(record.pages),
                             cost=cost, vc=list(node.vc.components))
        self.unpropagated[record.interval_id] = set(record.pages)
        return cost

    def mark_propagated(self, interval_id: IntervalId,
                        page: int) -> None:
        """This page's modification has reached whoever needed it."""
        pages = self.unpropagated.get(interval_id)
        if pages is not None:
            pages.discard(page)
            if not pages:
                del self.unpropagated[interval_id]

    def seal_from_app(self) -> Generator:
        yield from self.node.app_charge(self.seal_interval())

    def seal_in_handler(self) -> None:
        self.node.handler_charge(self.seal_interval())

    def _try_get_diff(self, proc: int, index: int,
                      page: int) -> Optional[Diff]:
        """Fetch a diff from the local store.  Diffs are only ever
        served verbatim as sealed — re-deriving one from a live page
        copy could leak later writes into an older interval."""
        return self.node.diff_store.get(proc, index, page)

    def _require_diff(self, proc: int, index: int, page: int) -> Diff:
        diff = self._try_get_diff(proc, index, page)
        if diff is None:
            raise ProtocolError(
                f"node {self.node.proc} asked for diff ({proc},{index}) "
                f"of page {page} it does not hold")
        return diff

    # ------------------------------------------------------------------
    # notice bookkeeping
    # ------------------------------------------------------------------

    def incorporate_records(self,
                            records: Sequence[IntervalRecord]) -> None:
        """Merge received interval records: log them and attach write
        notices to the affected page copies (or the orphan list)."""
        node = self.node
        if node.tracer and records:
            node.tracer.emit("protocol.notices_in", node=node.proc,
                             records=len(records),
                             pages=sum(len(r.pages) for r in records))
        get_copy = node.pagetable.copies.get
        masks = node.copysets._masks
        masks_get = masks.get
        interval_log = node.interval_log
        known = interval_log._records
        orphans = self.orphan_notices
        notices_received = node.ins.notices_received
        me = node.proc
        # A processor's clock is non-decreasing across its intervals,
        # so its highest-index record's vector time dominates the rest
        # — one observe_peer_vc merge per source proc replaces one per
        # record.
        latest: Dict[int, IntervalRecord] = {}
        for record in records:
            proc = record.proc
            if proc == me:
                continue
            # Duplicate quick-reject on the log's dict before paying
            # the add_if_new call: barrier departures broadcast the
            # union to everyone, so most records are already known.
            if (record.interval_id in known
                    or not interval_log.add_if_new(record)):
                continue
            notices_received.value += len(record.pages)
            # CopysetTable.add inlined (once per notice); the writer's
            # bit is fixed for the whole record.
            bit = 1 << proc
            for notice in record.notices():
                page = notice.page
                copy = get_copy(page)
                if copy is None:
                    # _add_orphan, inlined (hot: every notice for an
                    # uncached page lands here).
                    bucket = orphans.get(page)
                    if bucket is None:
                        bucket = orphans[page] = {}
                    interval_id = notice.interval_id
                    if interval_id not in bucket:
                        bucket[interval_id] = notice
                        masks[page] = masks_get(page, 0) | bit
                elif copy.add_notice(notice):
                    masks[page] = masks_get(page, 0) | bit
            current = latest.get(proc)
            if current is None or record.index > current.index:
                latest[proc] = record
        for proc, record in latest.items():
            node.observe_peer_vc(proc, record.vc)

    def _add_orphan(self, notice: WriteNotice) -> None:
        bucket = self.orphan_notices.setdefault(notice.page, {})
        interval_id = notice.interval_id
        if interval_id in bucket:
            return
        bucket[interval_id] = notice
        self.node.copysets.add(notice.page, notice.proc)

    def store_diffs(self,
                    diffs: Sequence[Tuple[IntervalId, Diff]]) -> None:
        for (proc, index), diff in diffs:
            self.node.diff_store.put(proc, index, diff)
            self.node.metrics.diffs_applied += 1
            self.node.ins.diffs_applied.value += 1

    # ------------------------------------------------------------------
    # applying pending modifications
    # ------------------------------------------------------------------

    def due_notices(self, copy: PageCopy) -> List["WriteNotice"]:
        """Pending notices inside this node's causal cone (vector time
        dominated by the node's clock).

        The node's knowledge of intervals is complete below its own
        vector time (grants and departures ship every record above the
        requester's clock), so for a *due* notice every
        happened-before-1 predecessor that modified the page is known —
        applying due notices in vector-time order can never be rolled
        back.  Notices *outside* the cone (delivered by opportunistic
        update pushes) must wait for the acquire that brings them in:
        applying them early could order them before an unknown
        predecessor."""
        pending = copy.pending_notices
        if not pending:
            return []
        # Memoized per copy, incrementally: a node's clock only ever
        # advances, so a notice once due stays due until applied —
        # re-filtering needs to look only at previous strays plus
        # notices appended since the last call, not the whole list.
        # Keys are object identities (clocks are immutable; the pending
        # list only ever grows in place or is swapped wholesale).
        vc = self.node.vc
        cached = copy.due_cache
        # The result must preserve pending-list order (it feeds request
        # construction and hence message ordering), so the incremental
        # path only fires when the prior prefix provably keeps its
        # order: either the clock is unchanged (strays stay strays) or
        # there were no strays (a monotone clock keeps every prior
        # entry due, in place).
        if (cached is not None and cached[1] is pending
                and (cached[0] is vc or not cached[4])):
            seen = cached[2]
            if cached[0] is vc and seen == len(pending):
                return cached[3]
            tail = pending[seen:]
            if not tail:
                copy.due_cache = (vc, pending, seen,
                                  cached[3], cached[4])
                return cached[3]
            due = list(cached[3])
            strays = list(cached[4])
        else:
            tail = pending
            due = []
            strays = []
        # Inlined VectorClock.dominates: this filter runs on every
        # acquire/barrier resolution and every miss — the method-call
        # version dominated whole-run profiles.
        mine = vc.components
        for n in tail:
            for a, b in zip(mine, n.vc.components):
                if a < b:
                    strays.append(n)
                    break
            else:
                due.append(n)
        copy.due_cache = (vc, pending, len(pending), due, strays)
        return due

    def pending_ready(self, copy: PageCopy) -> bool:
        """True if every *due* notice's diff is locally available."""
        return all(
            self.node.diff_store.has(n.proc, n.index, copy.page)
            for n in self.due_notices(copy))

    def apply_pending(self, copy: PageCopy) -> bool:
        """Apply every due notice's diff, in a happened-before-1 linear
        extension (ascending vector-time totals).  Returns True and
        revalidates the copy on success (not-yet-due pushed notices may
        remain pending — reading around them is release-consistent);
        returns False (no changes) if some due diff is missing."""
        due = self.due_notices(copy)
        if not due:
            # Nothing in the causal cone: trivially applied (pushed
            # strays may remain pending — reading around them is
            # release-consistent).
            copy.valid = True
            return True
        store = self.node.diff_store
        page = copy.page
        for n in due:
            if not store.has(n.proc, n.index, page):
                return False
        notices = sorted(due,
                         key=lambda n: (n.vc.total(), n.proc, n.index))
        get = store.get
        for notice in notices:
            diff = get(notice.proc, notice.index, page)
            diff.apply(copy)
            copy.mark_applied(notice.proc, notice.index)
        copy.remove_notices({n.interval_id for n in due})
        copy.valid = True
        if self.node.tracer:
            self.node.tracer.emit("protocol.diff_apply",
                                  page=copy.page, node=self.node.proc,
                                  diffs=len(notices))
        return True

    def invalidate_page(self, page: int) -> None:
        copy = self.node.pagetable.copies.get(page)
        if copy is None:
            return
        if copy.dirty:
            raise ProtocolError(
                f"invalidating dirty page {page} on node "
                f"{self.node.proc}: seal the interval first")
        if copy.valid:
            copy.valid = False
            self.node.metrics.invalidations += 1
            self.node.ins.invalidations.value += 1

    # ------------------------------------------------------------------
    # lazy access-miss machinery (shared by LI, LU, LH)
    # ------------------------------------------------------------------

    def concurrent_last_modifiers(
            self, notices: Sequence[WriteNotice]) -> List[int]:
        """Processors whose latest known modification of the page is not
        ordered before any other known modification ('m' in Table 1)."""
        latest: Dict[int, WriteNotice] = {}
        for notice in notices:
            current = latest.get(notice.proc)
            if current is None or notice.index > current.index:
                latest[notice.proc] = notice
        if len(latest) == 1:
            # Single known modifier (the common case in phase-parallel
            # apps): nobody can dominate it.
            return list(latest)
        modifiers = []
        for proc, notice in latest.items():
            dominated = any(
                other.vc.strictly_dominates(notice.vc)
                for other_proc, other in latest.items()
                if other_proc != proc)
            if not dominated:
                modifiers.append(proc)
        return sorted(modifiers)

    def _assign_wanted(self, notices: Sequence[WriteNotice],
                       modifiers: Sequence[int],
                       escalated: Optional[Set[Tuple[int, int]]] = None,
                       all_notices: Optional[
                           Sequence[WriteNotice]] = None
                       ) -> Dict[int, List[WriteNotice]]:
        """Group the wanted notices by the concurrent last modifier
        whose last modification dominates each (it *usually* retains
        the diffs that precede its own write).  Notices in
        ``escalated`` — already requested once and not supplied — go
        straight to their writer, who always retains its own diffs.
        ``all_notices`` (default: ``notices``) supplies the modifiers'
        latest vector times when some are not themselves wanted."""
        if all_notices is None:
            all_notices = notices
        escalated = escalated or set()
        latest_vc: Dict[int, VectorClock] = {}
        for notice in all_notices:
            current = latest_vc.get(notice.proc)
            if current is None or notice.index > current[notice.proc]:
                latest_vc[notice.proc] = notice.vc
        assignment: Dict[int, List[WriteNotice]] = {}
        for notice in notices:
            target = None
            if (notice.proc in modifiers
                    or notice.interval_id in escalated):
                target = notice.proc
            else:
                for modifier in modifiers:
                    vc = latest_vc.get(modifier)
                    if vc is not None and vc.dominates(notice.vc):
                        target = modifier
                        break
            if target is None:
                target = notice.proc  # the writer always has its diff
            assignment.setdefault(target, []).append(notice)
        return assignment

    def lazy_miss(self, page: int) -> Generator:
        """Resolve an access miss the lazy way: contact each concurrent
        last modifier once (2m messages), fetching the page contents
        from the first when we hold no copy at all."""
        node = self.node
        escalated: Set[Tuple[int, int]] = set()
        writer_requested: Set[Tuple[int, int]] = set()
        while True:
            copy = node.pagetable.copies.get(page)
            if copy is not None and copy.valid:
                return
            if copy is not None and self.apply_pending(copy):
                return
            # Only notices inside our causal cone are fetched; pushed
            # strays wait for the acquire that makes them due.
            if copy is not None:
                pending = self.due_notices(copy)
            else:
                mine = node.vc.components
                pending = []
                bucket = self.orphan_notices.get(page)
                if bucket:
                    for n in bucket.values():
                        for a, b in zip(mine, n.vc.components):
                            if a < b:
                                break
                        else:
                            pending.append(n)
            wanted = [n for n in pending
                      if n.proc != node.proc
                      and not node.diff_store.has(n.proc, n.index, page)]
            self._check_escalation(page, wanted, writer_requested)
            modifiers = [m for m in
                         self.concurrent_last_modifiers(pending)
                         if m != node.proc]
            assignment = self._assign_wanted(wanted, modifiers,
                                             escalated,
                                             all_notices=pending)
            escalated.update(n.interval_id for n in wanted)
            self._note_writer_requests(assignment, writer_requested)
            requests = []
            base_source = None
            if copy is None:
                base_source = (modifiers[0] if modifiers
                               else node.page_owner(page))
                if base_source == node.proc:
                    raise ProtocolError(
                        f"node {node.proc} cold-missing page {page} it "
                        "should already hold")
                requests.append((base_source, Message(
                    src=node.proc, dst=base_source, kind=MsgKind.PAGE_REQ,
                    payload={"page": page,
                             "wanted": self._wanted_ids(
                                 assignment.get(base_source, ()))})))
            for modifier, their_notices in assignment.items():
                if modifier == base_source:
                    continue
                requests.append((modifier, Message(
                    src=node.proc, dst=modifier, kind=MsgKind.DIFF_REQ,
                    payload={"page": page,
                             "wanted": self._wanted_ids(their_notices)})))
            if not requests and copy is None:
                # No modifiers known: plain cold miss from the owner.
                raise ProtocolError("unreachable: cold miss builds a "
                                    "request above")
            if not requests:
                # Pending notices but every diff already local: the
                # apply at loop top must have succeeded.
                raise ProtocolError(
                    f"node {node.proc} page {page} pending notices "
                    "unsatisfiable without requests")
            reply_events = []
            for _dst, message in requests:
                reply_events.append(node.expect_reply(message))
                yield from node.app_send(message)
            replies = yield node.sim.all_of(reply_events)
            for reply in replies:
                self._integrate_miss_reply(page, reply)
            # Loop: new notices may have raced in; normally one pass.

    @staticmethod
    def _wanted_ids(notices) -> List[Tuple[int, int]]:
        return [(n.proc, n.index) for n in notices]

    def _check_escalation(self, page: int, wanted,
                          writer_requested) -> None:
        """A diff requested directly from its writer must have arrived;
        anything else is a retention-invariant violation."""
        for notice in wanted:
            if notice.interval_id in writer_requested:
                raise ProtocolError(
                    f"node {self.node.proc}: writer {notice.proc} "
                    f"failed to supply diff {notice.interval_id} "
                    f"for page {page}")

    @staticmethod
    def _note_writer_requests(assignment, writer_requested) -> None:
        for target, notices in assignment.items():
            for notice in notices:
                if target == notice.proc:
                    writer_requested.add(notice.interval_id)

    def _integrate_miss_reply(self, page: int, reply: Message) -> None:
        payload = reply.payload
        node = self.node
        if reply.kind == MsgKind.PAGE_REPLY:
            self._install_base(page, payload)
        self.incorporate_records(payload.get("records", ()))
        self.store_diffs(payload.get("diffs", ()))
        if "copyset" in payload:
            node.copysets.add_many(page, payload["copyset"])

    def _install_base(self, page: int, payload: dict) -> None:
        """Install page contents received from a peer, preserving our
        own not-yet-propagated modifications as pending work."""
        node = self.node
        copy = node.pagetable.install(page, values=payload["values"],
                                      valid=False)
        copy.applied = dict(payload["applied"])
        copy.pending_notices = []
        node.metrics.page_transfers += 1
        node.ins.page_transfers.value += 1
        # Merge notices parked while we had no copy.
        parked = self.orphan_notices.pop(page, None)
        if parked:
            for notice in parked.values():
                copy.add_notice(notice)
        # Our own sealed intervals the source did not cover must be
        # re-applied on top (their diffs are local).
        for index in self.own_page_intervals.get(page, ()):
            if not copy.is_applied(node.proc, index):
                record = node.interval_log.get((node.proc, index))
                copy.add_notice(WriteNotice(page=page, proc=node.proc,
                                            index=index, vc=record.vc))

    # ------------------------------------------------------------------
    # serving misses and diff requests (shared handlers)
    # ------------------------------------------------------------------

    def _serve_page_request(self, message: Message) -> None:
        """Lazy-protocol PAGE_REQ service: page contents + coverage map
        + our pending notices + any requested diffs."""
        node = self.node
        page = message.payload["page"]
        copy = node.pagetable.copies.get(page)
        if copy is None:
            raise ProtocolError(
                f"node {node.proc} asked for page {page} it never "
                "cached")
        diffs = self._collect_diffs(page, message.payload["wanted"])
        records = self._records_for_notices(copy.pending_notices)
        node.copysets.add(page, message.src)
        reply = Message(
            src=node.proc, dst=message.src, kind=MsgKind.PAGE_REPLY,
            reply_to=message.msg_id,
            payload={"page": page,
                     "values": copy.snapshot(),
                     "applied": dict(copy.applied),
                     "records": records,
                     "diffs": diffs,
                     "copyset": set(node.copysets.get(page))},
            data_bytes=node.config.page_size + sum(
                self.diff_bytes(d) for _iid, d in diffs))
        node.handler_send(reply)

    def _serve_diff_request(self, message: Message) -> None:
        node = self.node
        page = message.payload["page"]
        diffs = self._collect_diffs(page, message.payload["wanted"])
        node.copysets.add(page, message.src)
        node.handler_send(Message(
            src=node.proc, dst=message.src, kind=MsgKind.DIFF_REPLY,
            reply_to=message.msg_id,
            payload={"page": page, "diffs": diffs,
                     "records": [node.interval_log.get(iid)
                                 for iid, _d in diffs]},
            data_bytes=sum(self.diff_bytes(d) for _iid, d in diffs)))

    def _collect_diffs(self, page: int,
                       wanted: Sequence[Tuple[int, int]]
                       ) -> List[Tuple[IntervalId, Diff]]:
        """Best effort: diffs we do not hold are simply omitted and the
        requester escalates to their writers (second miss round)."""
        found = []
        for proc, index in wanted:
            diff = self._try_get_diff(proc, index, page)
            if diff is not None:
                found.append(((proc, index), diff))
        return found

    def _records_for_notices(self, notices: Sequence[WriteNotice]
                             ) -> List[IntervalRecord]:
        records = []
        for notice in notices:
            record = self.node.interval_log.get(notice.interval_id)
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------------
    # update pushes (LH/LU barriers; EU reuses the flush path instead)
    # ------------------------------------------------------------------

    def push_updates(self, wait_acks: bool) -> Generator:
        """Send our unpropagated diffs to every believed cacher of the
        pages we modified: one UPDATE_PUSH per destination ('u' in
        Table 1), optionally acknowledged ('2u')."""
        node = self.node
        bundles: Dict[int, List[Tuple[IntervalRecord,
                                      List[Diff]]]] = {}
        for (proc, index), pages in self.unpropagated.items():
            record = node.interval_log.get((proc, index))
            for dest in range(node.config.nprocs):
                if dest == node.proc:
                    continue
                if node.peer_clock(dest)[node.proc] >= index:
                    continue  # destination already has this interval
                diffs = [node.diff_store.get(proc, index, page)
                         for page in sorted(pages)
                         if node.copysets.believes_cached(page, dest)]
                diffs = [d for d in diffs if d is not None]
                if diffs:
                    bundles.setdefault(dest, []).append((record, diffs))
        self.unpropagated = {}
        if not bundles:
            return
        reply_events = []
        for dest, bundle in sorted(bundles.items()):
            data = sum(self.diff_bytes(d)
                       for _r, ds in bundle for d in ds)
            message = Message(
                src=node.proc, dst=dest, kind=MsgKind.UPDATE_PUSH,
                payload={"bundle": bundle, "ack": wait_acks},
                data_bytes=data)
            if wait_acks:
                reply_events.append(node.expect_reply(message))
            yield from node.app_send(message)
        if reply_events:
            replies = yield node.sim.all_of(reply_events)
            for reply in replies:
                for page in reply.payload.get("not_cached", ()):
                    node.copysets.remove(page, reply.src)

    def _handle_update_push(self, message: Message) -> None:
        """Receive pushed diffs: log records, store diffs, and apply
        them wherever the copy stays fully covered."""
        node = self.node
        not_cached: List[int] = []
        for record, diffs in message.payload["bundle"]:
            self.incorporate_records([record])
            for diff in diffs:
                node.diff_store.put(record.proc, record.index, diff)
                node.metrics.diffs_applied += 1
                node.ins.diffs_applied.value += 1
                if not node.pagetable.has_copy(diff.page):
                    not_cached.append(diff.page)
        touched = {diff.page
                   for _record, diffs in message.payload["bundle"]
                   for diff in diffs}
        for page in touched:
            copy = node.pagetable.copies.get(page)
            if copy is not None and not copy.dirty:
                self.apply_pending(copy)
        if message.payload["ack"]:
            node.handler_send(Message(
                src=node.proc, dst=message.src, kind=MsgKind.UPDATE_ACK,
                reply_to=message.msg_id,
                payload={"not_cached": sorted(set(not_cached))}))

    # ------------------------------------------------------------------
    # garbage collection (TreadMarks-style validate-then-prune)
    # ------------------------------------------------------------------

    # Vector time whose history may be pruned at the *next* GC point
    # (set one GC cycle earlier, after global validation: every node
    # has finished fetching anything that old before it could arrive
    # at the barrier that triggers the prune).
    _gc_prunable_vc: Optional[VectorClock] = None

    def collect_garbage(self) -> Generator:
        """Reclaim consistency metadata (called at GC barriers).

        Phase P (prune): drop interval records, stored diffs, and
        orphan notices dominated by the vector time validated at the
        *previous* GC barrier — by then every node has validated its
        copies past that point, so nothing that old can be requested
        again.

        Phase V (validate): bring every local copy up to date with the
        just-departed barrier's knowledge (fetching diffs if needed),
        so the current clock becomes prunable at the next GC barrier.
        Eager protocols are always valid or served whole pages by the
        home, so their validation is free.
        """
        node = self.node
        if self._gc_prunable_vc is not None:
            vc = self._gc_prunable_vc
            dropped = node.interval_log.prune_dominated(vc)
            node.diff_store.prune_intervals(dropped)
            for page in list(self.orphan_notices):
                kept = {iid: n
                        for iid, n in self.orphan_notices[page].items()
                        if not vc.dominates(n.vc)}
                if kept:
                    self.orphan_notices[page] = kept
                else:
                    del self.orphan_notices[page]
            dropped_set = set(dropped)
            for page in list(self.own_page_intervals):
                kept_idx = [i for i in self.own_page_intervals[page]
                            if (node.proc, i) not in dropped_set]
                if kept_idx:
                    self.own_page_intervals[page] = kept_idx
                else:
                    del self.own_page_intervals[page]
        yield from self.validate_all()
        self._gc_prunable_vc = self.last_barrier_vc

    def validate_all(self) -> Generator:
        """Bring every cached page fully up to date (subclasses that
        can hold pending notices override)."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # policy points (overridden by subclasses)
    # ------------------------------------------------------------------

    def ensure_valid(self, page: int, for_write: bool) -> Generator:
        raise NotImplementedError

    def record_write(self, page: int, start: int, end: int) -> None:
        copy = self.node.pagetable.copies.get(page)
        if copy is None or not copy.valid:
            raise ProtocolError(
                f"write to invalid page {page} on node "
                f"{self.node.proc}: ensure_valid must run first")
        copy.record_write(start, end)
        self._dirty_pages.add(page)

    def on_release(self) -> Generator:
        raise NotImplementedError

    def grant_payload(self, requester: int,
                      requester_vc: VectorClock,
                      lock_id: Optional[int] = None
                      ) -> Tuple[Optional[ConsistencyInfo], int]:
        raise NotImplementedError

    def apply_grant(self,
                    info: Optional[ConsistencyInfo]) -> Generator:
        raise NotImplementedError

    def pre_barrier(self) -> Generator:
        raise NotImplementedError

    def barrier_arrive_payload(self) -> dict:
        return {"records":
                self.node.interval_log.records_after(self.last_barrier_vc),
                "vc": self.node.vc}

    def master_combine(self, arrivals: Dict[int, dict]) -> Dict[int, dict]:
        """Default master: union every arrival's records and hand the
        union (plus the merged clock) to everyone."""
        merged_vc = self.node.vc
        seen: Dict[IntervalId, IntervalRecord] = {}
        for payload in arrivals.values():
            merged_vc = merged_vc.merged(payload["vc"])
            for record in payload["records"]:
                seen.setdefault(record.interval_id, record)
        records = sorted(seen.values(),
                         key=lambda r: (r.vc.total(), r.proc, r.index))
        depart = {"records": records, "vc": merged_vc}
        return {proc: depart for proc in arrivals}

    def apply_depart(self, payload: dict) -> Generator:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind == MsgKind.PAGE_REQ:
            self._serve_page_request(message)
        elif kind == MsgKind.DIFF_REQ:
            self._serve_diff_request(message)
        elif kind == MsgKind.UPDATE_PUSH:
            self._handle_update_push(message)
        else:
            raise ProtocolError(
                f"{self.name} cannot handle {message}")
