"""Eager protocols: eager invalidate (EI) and eager update (EU).

Both are Munin-style multiple-writer protocols: a processor delays
propagating its modifications until it reaches a release, then *pushes*
consistency information to every other believed cacher of the modified
pages, taking multiple rounds if its (approximate) copysets turn out to
be stale.  The release does not complete until every recipient has
acknowledged.

**EU** pushes the diffs themselves; recipients apply them in place and
every copy stays valid.

**EI** pushes write notices (invalidations).  Concurrent modifications
of a falsely-shared page must still be *merged* somewhere; we use the
page's statically-assigned owner as the merge point (its *home*): at a
release the flusher also sends its diffs to each modified page's home,
which applies them into the never-invalidated home copy, and every
access miss fetches the full merged page from the home (whole-page
transfers are why EI moves the most data in the paper's Figures 9, 15
and 18).  This home-based merge replaces the paper's barrier-time
"winner" election with a winner fixed a priori — the home — which keeps
exactly one merged valid copy per page under arbitrary false sharing
and race interleavings; the message accounting is equivalent (one diff
message per excess modifier, 'v' in Table 1).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.mem.intervals import IntervalRecord
from repro.mem.timestamps import VectorClock
from repro.net.message import Message, MsgKind
from repro.protocols.base import (BaseProtocol, ConsistencyInfo,
                                  ProtocolError)


class EagerBase(BaseProtocol):
    """Shared eager machinery: owner-served misses with race poisoning,
    and the acknowledged, multi-round release flush."""

    is_lazy = False
    flush_with_diffs = False  # EU overrides

    def __init__(self, node) -> None:
        super().__init__(node)
        # Pages we are currently fetching.  A flush that arrives for
        # such a page must neither drop us from the flusher's copyset
        # nor be lost: it is parked here and reconciled against the
        # fetched copy (applied if it is a diff, or — for a bare
        # invalidation — the fetch retries until the home reflects it).
        self._miss_in_flight: Set[int] = set()
        self._poison_records: Dict[int, List[Tuple[IntervalRecord,
                                                   object]]] = {}

    # -- access misses ----------------------------------------------------

    def ensure_valid(self, page: int, for_write: bool) -> Generator:
        node = self.node
        copy = node.pagetable.copies.get(page)
        if copy is not None and copy.valid:
            return
        started = node.sim.now
        if for_write:
            node.metrics.write_misses += 1
            node.ins.write_misses.value += 1
        else:
            node.metrics.read_misses += 1
            node.ins.read_misses.value += 1
        if copy is None:
            node.metrics.cold_misses += 1
            node.ins.cold_misses.value += 1
        if node.tracer:
            node.tracer.emit("protocol.page_fault", page=page,
                             node=node.proc, write=for_write,
                             cold=copy is None)
        owner = node.page_owner(page)
        if owner == node.proc:
            raise ProtocolError(
                f"home {node.proc} of page {page} has an invalid copy")
        while True:
            self._miss_in_flight.add(page)
            reply = yield from node.request_from_app(Message(
                src=node.proc, dst=owner, kind=MsgKind.PAGE_REQ,
                payload={"page": page, "requester": node.proc}))
            self._miss_in_flight.discard(page)
            fresh = node.pagetable.install(page,
                                           values=reply.payload["values"],
                                           valid=True)
            fresh.applied = dict(reply.payload["applied"])
            fresh.pending_notices = []
            node.metrics.page_transfers += 1
            node.ins.page_transfers.value += 1
            node.copysets.add_many(page, reply.payload["copyset"])
            node.copysets.add(page, node.proc)
            # Our own not-yet-flushed modifications are not at the home
            # yet: lay them back over the fetched copy.
            self._reapply_unpropagated(page, fresh)
            # Reconcile flushes that raced the fetch.
            raced = self._poison_records.pop(page, [])
            unmet = []
            for record, diff in raced:
                if fresh.is_applied(record.proc, record.index):
                    continue
                if diff is not None:
                    diff.apply(fresh)
                    fresh.mark_applied(record.proc, record.index)
                else:
                    unmet.append((record, diff))
            if not unmet:
                break
            # An invalidation we saw is not yet reflected at the home:
            # the reply overtook the flusher's home update.  Retry.
            fresh.valid = False
            self._poison_records.setdefault(page, []).extend(unmet)
        waited = node.sim.now - started
        node.metrics.miss_wait_cycles += waited
        node.ins.miss_wait.observe(waited)
        if node.tracer:
            node.tracer.emit("protocol.fault_done", page=page,
                             node=node.proc, waited=waited)

    def _reapply_unpropagated(self, page: int, copy) -> None:
        node = self.node
        for index in self.own_page_intervals.get(page, ()):
            interval_id = (node.proc, index)
            if page in self.unpropagated.get(interval_id, ()):
                diff = self._require_diff(node.proc, index, page)
                diff.apply(copy)
                copy.mark_applied(node.proc, index)

    def _serve_eager_page_request(self, message: Message) -> None:
        """Home side of a miss: the home copy is always valid."""
        node = self.node
        page = message.payload["page"]
        requester = message.payload["requester"]
        copy = node.pagetable.copies.get(page)
        if copy is None or not copy.valid:
            raise ProtocolError(
                f"home {node.proc} cannot serve page {page}: copy "
                f"{'missing' if copy is None else 'invalid'}")
        node.copysets.add(page, requester)
        node.handler_send(Message(
            src=node.proc, dst=requester, kind=MsgKind.PAGE_REPLY,
            reply_to=message.msg_id,
            payload={"page": page, "values": copy.snapshot(),
                     "applied": dict(copy.applied),
                     "copyset": set(node.copysets.get(page))},
            data_bytes=node.config.page_size))

    # -- the release flush ---------------------------------------------------

    def on_release(self) -> Generator:
        yield from self.seal_from_app()
        yield from self.flush()

    def flush(self) -> Generator:
        """Propagate our sealed-but-unpropagated modifications.

        EU: diffs to every believed cacher, with acks, looping while
        acks reveal cachers we missed.

        EI: diffs to each modified page's home (merged into the home
        copy) plus invalidation notices to the other cachers, same ack
        and round structure.
        """
        node = self.node
        pending: List[Tuple[IntervalRecord, Set[int]]] = [
            (node.interval_log.get(iid), set(iid_pages))
            for iid, iid_pages in self.unpropagated.items()]
        pages: Set[int] = set()
        for _record, record_pages in pending:
            pages.update(record_pages)
        if not pages:
            return
        # Coverage is per (target, page): an ack can reveal that a
        # target we already flushed other pages to also caches this
        # page, in which case the next round must still reach it.
        sent: Set[Tuple[int, int]] = set()
        while True:
            needed: Dict[int, Set[int]] = {}
            for page in pages:
                destinations = set(node.copysets.others(page))
                home = node.page_owner(page)
                if home != node.proc:
                    destinations.add(home)
                for target in destinations:
                    if (target, page) not in sent:
                        needed.setdefault(target, set()).add(page)
            if not needed:
                break
            reply_events = []
            for target, target_pages in sorted(needed.items()):
                entries = self._flush_entries(pending, target,
                                              target_pages)
                sent.update((target, page) for page in target_pages)
                if not entries:
                    continue
                data = sum(self.diff_bytes(d)
                           for _r, _p, d in entries if d is not None)
                message = Message(
                    src=node.proc, dst=target, kind=MsgKind.FLUSH,
                    payload={"entries": entries,
                             "update": self.flush_with_diffs},
                    data_bytes=data)
                reply_events.append(node.expect_reply(message))
                yield from node.app_send(message)
            if not reply_events:
                break
            replies = yield node.sim.all_of(reply_events)
            for reply in replies:
                self._absorb_flush_ack(reply)
        for record, record_pages in pending:
            for page in record_pages:
                self.mark_propagated(record.interval_id, page)

    def _flush_entries(self, pending, target, allowed_pages
                       ) -> List[Tuple[IntervalRecord, int, object]]:
        """(record, page, diff-or-None) entries relevant to ``target``,
        restricted to ``allowed_pages`` (this round's coverage).

        EU sends a diff for every page the target is believed to cache.
        EI sends the diff when the target is the page's home (merge)
        and a bare notice (invalidation) when it is any other cacher.
        """
        node = self.node
        entries = []
        for record, record_pages in pending:
            for page in sorted(record_pages):
                if page not in allowed_pages:
                    continue
                is_home = node.page_owner(page) == target
                cached = node.copysets.believes_cached(page, target)
                if not cached and not is_home:
                    continue
                diff = None
                if self.flush_with_diffs or is_home:
                    diff = node.diff_store.get(record.proc,
                                               record.index, page)
                entries.append((record, page, diff))
        return entries

    def _absorb_flush_ack(self, reply: Message) -> None:
        node = self.node
        payload = reply.payload
        for page, copyset in payload["copysets"].items():
            node.copysets.add_many(page, copyset)
        for page in payload["not_cached"]:
            node.copysets.remove(page, reply.src)

    def _handle_flush(self, message: Message) -> None:
        node = self.node
        entries = message.payload["entries"]
        with_diffs = message.payload["update"]
        copysets: Dict[int, set] = {}
        not_cached: List[int] = []
        invalidating = sorted({page for _r, page, diff in entries
                               if diff is None})
        if any(node.pagetable.copies.get(page) is not None
               and node.pagetable.copies.get(page).dirty
               for page in invalidating):
            # Local concurrent modifications survive as sealed diffs
            # and reach the home at our own next release.
            self.seal_in_handler()
        for record, page, diff in entries:
            self.incorporate_records([record])
            copysets[page] = set(node.copysets.get(page))
            node.copysets.add(page, message.src)
            copy = node.pagetable.copies.get(page)
            in_flight = page in self._miss_in_flight
            if in_flight:
                # Reconciled after the racing fetch installs.
                self._poison_records.setdefault(page, []).append(
                    (record, diff))
                continue
            if diff is not None:
                if copy is None or not copy.valid:
                    raise ProtocolError(
                        f"node {node.proc}: flush diff for page {page} "
                        "arrived at a "
                        f"{'missing' if copy is None else 'stale'} copy")
                # EU update, or EI home merge: apply in place.
                diff.apply(copy)
                copy.mark_applied(record.proc, record.index)
                node.diff_store.put(record.proc, record.index, diff)
                node.metrics.diffs_applied += 1
                node.ins.diffs_applied.inc()
            else:
                # EI invalidation notice.
                if copy is None:
                    if page not in not_cached:
                        not_cached.append(page)
                elif copy.valid:
                    self.invalidate_page(page)
        node.handler_send(Message(
            src=node.proc, dst=message.src, kind=MsgKind.FLUSH_ACK,
            reply_to=message.msg_id,
            payload={"copysets": copysets, "not_cached": not_cached}))

    # -- locks: no consistency information on grants -------------------------

    def grant_payload(self, requester: int,
                      requester_vc: VectorClock,
                      lock_id=None
                      ) -> Tuple[Optional[ConsistencyInfo], int]:
        node = self.node
        node.advance_peer_clock(requester, node.vc)
        return None, 0

    def apply_grant(self,
                    info: Optional[ConsistencyInfo]) -> Generator:
        if info is not None:
            raise ProtocolError(f"{self.name} got consistency payload "
                                "on a lock grant")
        return
        yield  # pragma: no cover - makes this a generator

    # -- message dispatch -----------------------------------------------------

    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind == MsgKind.PAGE_REQ:
            self._serve_eager_page_request(message)
        elif kind == MsgKind.FLUSH:
            self._handle_flush(message)
        else:
            super().handle(message)


class EagerInvalidate(EagerBase):
    """EI: invalidations at release, home-merged concurrent writes,
    whole-page misses (Table 1 row 'EI')."""

    name = "ei"
    flush_with_diffs = False

    def pre_barrier(self) -> Generator:
        # A barrier arrival is a release; consistency information also
        # reaches everyone through the master, but the home merges (and
        # the matching invalidations) must be complete before we arrive
        # so departures read a consistent home.
        yield from self.on_release()

    def apply_depart(self, payload: dict) -> Generator:
        node = self.node
        records = payload["records"]
        self.incorporate_records(records)
        modifiers: Dict[int, Set[int]] = {}
        for record in records:
            for page in record.pages:
                modifiers.setdefault(page, set()).add(record.proc)
        for page, procs in sorted(modifiers.items()):
            if node.page_owner(page) == node.proc:
                continue  # the home copy holds the merge: keep it
            others = procs - {node.proc}
            copy = node.pagetable.copies.get(page)
            if others and copy is not None and copy.valid \
                    and not copy.dirty:
                self.invalidate_page(page)
        node.vc = node.vc.merged(payload["vc"])
        self.last_barrier_vc = payload["vc"]
        return
        yield  # pragma: no cover - makes this a generator


class EagerUpdate(EagerBase):
    """EU: diffs pushed to every cacher at each release and barrier
    arrival (Table 1 row 'EU')."""

    name = "eu"
    flush_with_diffs = True

    def pre_barrier(self) -> Generator:
        # A barrier arrival is a release: flush updates with acks.
        yield from self.on_release()

    def apply_depart(self, payload: dict) -> Generator:
        node = self.node
        self.incorporate_records(payload["records"])
        node.vc = node.vc.merged(payload["vc"])
        self.last_barrier_vc = payload["vc"]
        return
        yield  # pragma: no cover - makes this a generator
