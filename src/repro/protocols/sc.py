"""Sequentially-consistent single-writer protocol (Ivy-style).

The baseline the release-consistent protocols were invented to beat:
Li & Hudak's manager-based write-invalidate shared virtual memory
(the paper's reference [13]).  One writer at a time per page:

- each page has a static **manager** (its allocation-time owner) that
  tracks the current owning writer and the reader copyset, and
  serializes ownership transactions per page;
- a **read miss** asks the manager, which forwards to the owner, who
  sends the page; the reader joins the copyset in READ state;
- a **write fault** asks the manager for ownership: the manager
  invalidates every reader, collects their acks, has the old owner
  hand the page over, and records the requester as the new owner.

No diffs, no write notices, no multiple writers: two processors
alternately writing different words of the same page ping-pong the
whole 4-KB page between them — the false-sharing catastrophe that
motivates the paper's multiple-writer RC protocols.  Locks and
barriers still synchronize control flow but carry no consistency
payload (they do not need to: every write is globally visible before
the next conflicting access).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.mem.timestamps import VectorClock
from repro.net.message import Message, MsgKind
from repro.protocols.base import (BaseProtocol, ConsistencyInfo,
                                  ProtocolError)

READ = "read"
WRITE = "write"


class _ManagedPage:
    """Manager-side bookkeeping for one page."""

    __slots__ = ("owner", "copyset", "busy", "pending")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.copyset: Set[int] = {owner}
        self.busy = False
        # Queued (requester, for_write) transactions.
        self.pending: Deque[Tuple[int, bool]] = deque()


class SequentialInvalidate(BaseProtocol):
    """'sc': the pre-RC single-writer baseline."""

    name = "sc"
    is_lazy = False
    # A valid copy may be read-only (mode READ): writes must still go
    # through ensure_valid's ownership transaction.
    valid_copy_serves_writes = False
    # The ownership directory (managed/mode/_fault_done) is outside
    # the RCKP checkpoint sections; crash faults reject SC runs.
    supports_checkpoint = False

    def __init__(self, node) -> None:
        super().__init__(node)
        # Access mode per locally cached, valid page.
        self.mode: Dict[int, str] = {}
        # Manager state for pages this node manages.
        self.managed: Dict[int, _ManagedPage] = {}
        # In-flight fault completions, keyed by page.
        self._fault_done: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _manager_state(self, page: int) -> _ManagedPage:
        if self.node.page_owner(page) != self.node.proc:
            raise ProtocolError(
                f"node {self.node.proc} is not the manager of page "
                f"{page}")
        state = self.managed.get(page)
        if state is None:
            state = _ManagedPage(owner=self.node.proc)
            self.managed[page] = state
        return state

    def _local_mode(self, page: int) -> Optional[str]:
        copy = self.node.pagetable.copies.get(page)
        if copy is None or not copy.valid:
            return None
        return self.mode.get(page, READ)

    # ------------------------------------------------------------------
    # the application-facing policy points
    # ------------------------------------------------------------------

    def ensure_valid(self, page: int, for_write: bool) -> Generator:
        node = self.node
        mode = self._local_mode(page)
        if mode == WRITE or (mode == READ and not for_write):
            return
        started = node.sim.now
        if for_write:
            node.metrics.write_misses += 1
            node.ins.write_misses.inc()
        else:
            node.metrics.read_misses += 1
            node.ins.read_misses.inc()
        if node.pagetable.copies.get(page) is None:
            node.metrics.cold_misses += 1
            node.ins.cold_misses.inc()
        if node.tracer:
            node.tracer.emit("protocol.page_fault", page=page,
                             node=node.proc, write=for_write,
                             cold=node.pagetable.copies.get(page) is None)
        while True:
            manager = node.page_owner(page)
            if manager == node.proc:
                # We manage this page: run the transaction in place.
                yield from self._local_transaction(page, for_write)
            else:
                done = node.sim.event(f"sc-fault-{page}")
                self._fault_done[page] = done
                yield from node.app_send(Message(
                    src=node.proc, dst=manager, kind=MsgKind.PAGE_REQ,
                    payload={"sc": True, "page": page,
                             "requester": node.proc,
                             "write": for_write}))
                yield done
                self._fault_done.pop(page, None)
            mode = self._local_mode(page)
            if mode == WRITE or (mode == READ and not for_write):
                break
            # An interleaved transaction snatched the page back
            # between our grant and our access: fault again.
        waited = node.sim.now - started
        node.metrics.miss_wait_cycles += waited
        node.ins.miss_wait.observe(waited)
        if node.tracer:
            node.tracer.emit("protocol.fault_done", page=page,
                             node=node.proc, waited=waited)

    def record_write(self, page: int, start: int, end: int) -> None:
        if self._local_mode(page) != WRITE:
            raise ProtocolError(
                f"node {self.node.proc} wrote page {page} without "
                "ownership")
        # Single writer: the write is already in the only live copy.

    # Synchronization carries no consistency information under SC.

    def on_release(self) -> Generator:
        return
        yield  # pragma: no cover - makes this a generator

    def grant_payload(self, requester: int,
                      requester_vc: VectorClock,
                      lock_id=None
                      ) -> Tuple[Optional[ConsistencyInfo], int]:
        return None, 0

    def apply_grant(self,
                    info: Optional[ConsistencyInfo]) -> Generator:
        if info is not None:
            raise ProtocolError("sc lock grants carry no payload")
        return
        yield  # pragma: no cover - makes this a generator

    def pre_barrier(self) -> Generator:
        return
        yield  # pragma: no cover - makes this a generator

    def barrier_arrive_payload(self) -> dict:
        return {"records": [], "vc": self.node.vc}

    def apply_depart(self, payload: dict) -> Generator:
        return
        yield  # pragma: no cover - makes this a generator

    def collect_garbage(self) -> Generator:
        return
        yield  # pragma: no cover - SC keeps no metadata to collect

    # ------------------------------------------------------------------
    # manager-side transaction engine
    # ------------------------------------------------------------------

    def _local_transaction(self, page: int,
                           for_write: bool) -> Generator:
        """The manager faults on its own page: queue like anyone else
        and wait for the transaction to complete."""
        done = self.node.sim.event(f"sc-local-{page}")
        self._fault_done[page] = done
        self._enqueue_transaction(page, self.node.proc, for_write)
        yield done
        self._fault_done.pop(page, None)

    def _enqueue_transaction(self, page: int, requester: int,
                             for_write: bool) -> None:
        state = self._manager_state(page)
        state.pending.append((requester, for_write))
        if not state.busy:
            self._start_next_transaction(page, state)

    def _start_next_transaction(self, page: int,
                                state: _ManagedPage) -> None:
        if not state.pending:
            state.busy = False
            return
        state.busy = True
        requester, for_write = state.pending.popleft()
        self.node.sim.spawn(
            self._run_transaction(page, state, requester, for_write),
            name=f"sc-txn-{page}-{requester}")

    def _run_transaction(self, page: int, state: _ManagedPage,
                         requester: int,
                         for_write: bool) -> Generator:
        node = self.node
        if for_write:
            # Invalidate every plain reader in parallel (the owner's
            # copy is taken care of by the hand-over itself, so it can
            # still source the page transfer).
            readers = sorted(state.copyset
                             - {state.owner, requester, node.proc})
            events = []
            for target in readers:
                message = Message(
                    src=node.proc, dst=target, kind=MsgKind.FLUSH,
                    payload={"sc_invalidate": page})
                events.append(node.expect_reply(message))
                yield from node.app_send(message)
            if (node.proc in state.copyset
                    and node.proc not in (state.owner, requester)):
                self._drop_local(page)
            if events:
                yield node.sim.all_of(events)
        # Ship the page to the requester; on a write hand-over the
        # source relinquishes its own copy.
        yield from self._deliver_page(page, state, requester, for_write)
        if for_write:
            state.owner = requester
            state.copyset = {requester}
        else:
            state.copyset.add(requester)
        self._start_next_transaction(page, state)

    def _deliver_page(self, page: int, state: _ManagedPage,
                      requester: int, for_write: bool) -> Generator:
        node = self.node
        source = state.owner
        if requester == node.proc:
            if self._local_mode(page) is None:
                yield from self._fetch_from(source, page, for_write)
            elif for_write and source != node.proc:
                # Upgrade: the old owner must still relinquish.
                yield from self._fetch_from(source, page, True)
            self.mode[page] = WRITE if for_write else READ
            done = self._fault_done.get(page)
            if done is not None and not done.triggered:
                done.succeed()
            return
        if source == requester:
            # The requester already owns the page (mode upgrade, e.g.
            # READ -> WRITE after the readers were invalidated): just
            # confirm, no page movement.
            yield from node.app_send(Message(
                src=node.proc, dst=requester, kind=MsgKind.PAGE_REPLY,
                payload={"sc_grant": page, "write": for_write,
                         "values": None}))
            return
        # Tell the owner to send its copy (or serve it ourselves).
        if source == node.proc:
            copy = node.pagetable.copies.get(page)
            if copy is None:
                raise ProtocolError(
                    f"sc manager {node.proc} lost page {page}")
            # Snapshot and revoke our own access in the same event
            # step: a local fast-path write sneaking in between would
            # be lost with the outgoing copy.
            values = copy.snapshot()
            if for_write:
                self._drop_local(page)  # ownership leaves this node
            else:
                self.mode[page] = READ  # our writes must fault now
            yield from node.app_send(Message(
                src=node.proc, dst=requester, kind=MsgKind.PAGE_REPLY,
                payload={"sc_grant": page, "write": for_write,
                         "values": values},
                data_bytes=node.config.page_size))
        else:
            message = Message(
                src=node.proc, dst=source, kind=MsgKind.PAGE_FWD,
                payload={"sc": True, "page": page,
                         "requester": requester, "write": for_write})
            ack = node.expect_reply(message)
            yield from node.app_send(message)
            yield ack

    def _fetch_from(self, source: int, page: int,
                    take_ownership: bool) -> Generator:
        node = self.node
        message = Message(
            src=node.proc, dst=source, kind=MsgKind.DIFF_REQ,
            payload={"sc_fetch": page, "relinquish": take_ownership})
        reply = node.expect_reply(message)
        yield from node.app_send(message)
        answer = yield reply
        node.pagetable.install(page, values=answer.payload["values"],
                               valid=True)
        node.metrics.page_transfers += 1
        node.ins.page_transfers.inc()

    def _drop_local(self, page: int) -> None:
        copy = self.node.pagetable.copies.get(page)
        if copy is not None and copy.valid:
            copy.valid = False
            self.node.metrics.invalidations += 1
            self.node.ins.invalidations.inc()
        self.mode.pop(page, None)

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------

    def handle(self, message: Message) -> None:
        payload = message.payload
        kind = message.kind
        if kind == MsgKind.PAGE_REQ and payload.get("sc"):
            self._enqueue_transaction(payload["page"],
                                      payload["requester"],
                                      payload["write"])
        elif kind == MsgKind.PAGE_FWD and payload.get("sc"):
            self._serve_forward(message)
        elif kind == MsgKind.PAGE_REPLY and "sc_grant" in payload:
            self._receive_grant(message)
        elif kind == MsgKind.FLUSH and "sc_invalidate" in payload:
            self._drop_local(payload["sc_invalidate"])
            self.node.handler_send(Message(
                src=self.node.proc, dst=message.src,
                kind=MsgKind.FLUSH_ACK, reply_to=message.msg_id,
                payload={}))
        elif kind == MsgKind.DIFF_REQ and "sc_fetch" in payload:
            page = payload["sc_fetch"]
            copy = self.node.pagetable.copies.get(page)
            if copy is None:
                raise ProtocolError(
                    f"sc node {self.node.proc} asked for page {page} "
                    "it does not hold")
            self.node.handler_send(Message(
                src=self.node.proc, dst=message.src,
                kind=MsgKind.DIFF_REPLY, reply_to=message.msg_id,
                payload={"values": copy.snapshot()},
                data_bytes=self.node.config.page_size))
            if payload.get("relinquish"):
                self._drop_local(page)
        else:
            raise ProtocolError(f"sc cannot handle {message}")

    def _serve_forward(self, message: Message) -> None:
        """Owner side: ship the page to the requester and ack the
        manager so the transaction can commit."""
        node = self.node
        payload = message.payload
        page = payload["page"]
        copy = node.pagetable.copies.get(page)
        if copy is None or not copy.valid:
            raise ProtocolError(
                f"sc owner {node.proc} lost page {page}")
        node.handler_send(Message(
            src=node.proc, dst=payload["requester"],
            kind=MsgKind.PAGE_REPLY,
            payload={"sc_grant": page, "write": payload["write"],
                     "values": copy.snapshot()},
            data_bytes=node.config.page_size))
        if payload["write"]:
            self._drop_local(page)
        else:
            self.mode[page] = READ
        node.handler_send(Message(
            src=node.proc, dst=message.src, kind=MsgKind.FLUSH_ACK,
            reply_to=message.msg_id, payload={}))

    def _receive_grant(self, message: Message) -> None:
        node = self.node
        payload = message.payload
        page = payload["sc_grant"]
        if payload["values"] is not None:
            node.pagetable.install(page, values=payload["values"],
                                   valid=True)
            node.metrics.page_transfers += 1
            node.ins.page_transfers.inc()
        self.mode[page] = WRITE if payload["write"] else READ
        done = self._fault_done.get(page)
        if done is not None and not done.triggered:
            if node.tracer:
                node.tracer.emit("sched.wake", node=node.proc,
                                 kind="sc_grant",
                                 cause=message.msg_id, page=page)
            done.succeed()
