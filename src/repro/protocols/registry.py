"""Protocol registry: name -> implementation."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.protocols.base import BaseProtocol
from repro.protocols.eager import EagerInvalidate, EagerUpdate
from repro.protocols.lazy import LazyHybrid, LazyInvalidate, LazyUpdate
from repro.protocols.entry import EntryConsistency
from repro.protocols.sc import SequentialInvalidate

_PROTOCOLS: Dict[str, Type[BaseProtocol]] = {
    "ei": EagerInvalidate,
    "eu": EagerUpdate,
    "li": LazyInvalidate,
    "lu": LazyUpdate,
    "lh": LazyHybrid,
    "sc": SequentialInvalidate,
    "ec": EntryConsistency,
}

#: The paper's canonical ordering (figures list protocols this way).
#: 'sc' — the Ivy-style single-writer baseline — is available for
#: comparison studies but is not part of the paper's five.
PROTOCOL_NAMES: List[str] = ["lh", "li", "lu", "ei", "eu"]
ALL_PROTOCOL_NAMES: List[str] = PROTOCOL_NAMES + ["sc", "ec"]


def create_protocol(name: str, node, options=None) -> BaseProtocol:
    """Instantiate the protocol ``name`` ('lh', 'li', 'lu', 'ei', 'eu')
    for ``node``.  ``options`` tweak policy knobs for ablation studies
    (see each protocol's ``configure``)."""
    try:
        cls = _PROTOCOLS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from "
            f"{sorted(_PROTOCOLS)}") from None
    protocol = cls(node)
    if options:
        protocol.configure(**options)
    return protocol


def protocol_class(name: str) -> Type[BaseProtocol]:
    return _PROTOCOLS[name.lower()]
