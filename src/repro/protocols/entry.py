"""Entry-consistency-flavored protocol ('ec', Midway-style).

The paper's related work contrasts release consistency with Bershad &
Zekauskas's *entry consistency*: "On a lock acquisition EC only needs
to propagate the shared data associated with the lock", at the price
of requiring the programmer to bind every piece of shared data to a
synchronization object (`Machine.bind_lock`).

This implementation grafts that propagation rule onto the LRC
substrate: a lock grant piggybacks diffs for exactly the pages *bound*
to that lock (regardless of copyset guesses), and nothing else.  Pages
named by unbound write notices fall back to invalidate-on-notice, which
is *stronger* than Midway (real EC gives unbound data no guarantees at
all), so improperly-annotated programs still run correctly here — they
just pay LI-like miss costs for whatever they forgot to bind.  Barriers
behave as in LH (push + notices), matching Midway's treatment of
global synchronization.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.mem.timestamps import VectorClock
from repro.protocols.base import ConsistencyInfo
from repro.protocols.lazy import LazyHybrid


class EntryConsistency(LazyHybrid):
    """'ec': grants move exactly the lock's bound data."""

    name = "ec"

    def grant_payload(self, requester: int,
                      requester_vc: VectorClock,
                      lock_id: Optional[int] = None
                      ) -> Tuple[ConsistencyInfo, int]:
        node = self.node
        records = node.interval_log.records_after(requester_vc)
        bound = (node.machine.pages_bound_to(lock_id)
                 if lock_id is not None else frozenset())
        diffs = []
        for record in records:
            for page in sorted(record.pages):
                if page not in bound:
                    continue
                diff = self._try_get_diff(record.proc, record.index,
                                          page)
                if diff is not None:
                    diffs.append(((record.proc, record.index), diff))
        info = ConsistencyInfo(sender_vc=node.vc, records=records,
                               diffs=diffs)
        node.advance_peer_clock(requester, node.vc)
        return info, sum(self.diff_bytes(d) for _iid, d in info.diffs)
