"""Lazy protocols: lazy invalidate (LI), lazy update (LU), and the
paper's new lazy hybrid (LH).

All three *pull* consistency information at acquires: the releaser
piggybacks, on the lock grant (or the barrier master distributes, on
departures), write notices for every interval the acquirer has not yet
seen under happened-before-1.  They differ in what happens to the pages
those notices name:

- **LI** invalidates them; the diffs are fetched on the next access
  miss (from the concurrent last modifiers, 2m messages).
- **LU** never invalidates: the acquire blocks until every named diff
  has been obtained (3 + 2h lock messages).
- **LH** applies the diffs the releaser piggybacked (pages the releaser
  believed the acquirer caches) and invalidates only the rest — a
  single message pair per lock transfer, like LI, with most of LU's
  access-miss savings.

At barriers, LH and LU push their new diffs directly to the believed
cachers before arriving (u and 2u extra messages, Table 1); LI relies
on invalidation alone.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.mem.intervals import WriteNotice
from repro.mem.timestamps import VectorClock
from repro.net.message import Message, MsgKind
from repro.protocols.base import (BaseProtocol, ConsistencyInfo,
                                  ProtocolError)


class LazyBase(BaseProtocol):
    """Shared lazy machinery: pull-based misses and grant handling."""

    is_lazy = True
    piggyback_diffs = False   # LH/LU attach diffs to grants
    push_at_barrier = False   # LH/LU push updates before arriving
    push_needs_acks = False   # LU (and EU) wait for push acks

    # -- access misses -------------------------------------------------------

    def ensure_valid(self, page: int, for_write: bool) -> Generator:
        node = self.node
        copy = node.pagetable.copies.get(page)
        if copy is not None and copy.valid:
            return
        started = node.sim.now
        if for_write:
            node.metrics.write_misses += 1
            node.ins.write_misses.value += 1
        else:
            node.metrics.read_misses += 1
            node.ins.read_misses.value += 1
        if copy is None:
            node.metrics.cold_misses += 1
            node.ins.cold_misses.value += 1
        if node.tracer:
            node.tracer.emit("protocol.page_fault", page=page,
                             node=node.proc, write=for_write,
                             cold=copy is None)
        yield from self.lazy_miss(page)
        waited = node.sim.now - started
        node.metrics.miss_wait_cycles += waited
        node.ins.miss_wait.observe(waited)
        if node.tracer:
            node.tracer.emit("protocol.fault_done", page=page,
                             node=node.proc, waited=waited)

    def fetch_pending(self, page: int) -> Generator:
        """Obtain and apply every pending diff for ``page`` (LU's
        acquire-time pull); works whether the copy is valid or not."""
        node = self.node
        escalated = set()
        writer_requested = set()
        while True:
            copy = node.pagetable.copies.get(page)
            if copy is None or not self.due_notices(copy):
                return
            if self.apply_pending(copy):
                return
            pending = self.due_notices(copy)
            wanted = [n for n in pending
                      if n.proc != node.proc
                      and not node.diff_store.has(n.proc, n.index,
                                                  page)]
            self._check_escalation(page, wanted, writer_requested)
            modifiers = [m for m in
                         self.concurrent_last_modifiers(pending)
                         if m != node.proc]
            assignment = self._assign_wanted(wanted, modifiers,
                                             escalated,
                                             all_notices=pending)
            escalated.update(n.interval_id for n in wanted)
            self._note_writer_requests(assignment, writer_requested)
            reply_events = []
            for modifier, their in sorted(assignment.items()):
                message = Message(
                    src=node.proc, dst=modifier, kind=MsgKind.DIFF_REQ,
                    payload={"page": page,
                             "wanted": self._wanted_ids(their)})
                reply_events.append(node.expect_reply(message))
                yield from node.app_send(message)
            if not reply_events:
                raise ProtocolError(
                    f"node {node.proc}: pending notices on page {page} "
                    "with nobody to fetch from")
            replies = yield node.sim.all_of(reply_events)
            for reply in replies:
                self._integrate_miss_reply(page, reply)

    # -- release / acquire ----------------------------------------------------

    def on_release(self) -> Generator:
        yield from self.seal_from_app()

    #: LH/LU piggyback heuristic (ablation): "copyset" sends diffs only
    #: for pages the requester is believed to cache (the paper's rule);
    #: "always" sends every available diff; "never" degenerates toward
    #: LI's notice-only grants.
    piggyback_policy = "copyset"
    TUNABLES = BaseProtocol.TUNABLES + ("piggyback_policy",)

    def grant_payload(self, requester: int,
                      requester_vc: VectorClock,
                      lock_id=None
                      ) -> Tuple[ConsistencyInfo, int]:
        node = self.node
        records = node.interval_log.records_after(requester_vc)
        diffs = []
        if (self.piggyback_diffs and records
                and self.piggyback_policy != "never"):
            # Batched piggyback assembly: one pass over the records'
            # cached page-ascending notices (no per-grant sort), with
            # the requester's copyset membership resolved once per
            # page — hot pages recur across the granted intervals.
            copyset_rule = self.piggyback_policy == "copyset"
            believes = node.copysets.believes_cached
            get_diff = node.diff_store.get
            cached_ok: Dict[int, bool] = {}
            for record in records:
                proc = record.proc
                index = record.index
                interval_id = record.interval_id
                for notice in record.notices():
                    page = notice.page
                    if copyset_rule:
                        ok = cached_ok.get(page)
                        if ok is None:
                            ok = cached_ok[page] = believes(page,
                                                            requester)
                        if not ok:
                            continue
                    diff = get_diff(proc, index, page)
                    if diff is not None:
                        diffs.append((interval_id, diff))
        info = ConsistencyInfo(sender_vc=node.vc, records=records,
                               diffs=diffs)
        node.advance_peer_clock(requester, node.vc)
        return info, sum(self.diff_bytes(d) for _iid, d in info.diffs)

    def apply_grant(self, info: Optional[ConsistencyInfo]) -> Generator:
        if info is None:
            raise ProtocolError(f"{self.name} grant without payload")
        node = self.node
        self.incorporate_records(info.records)
        self.store_diffs(info.diffs)
        node.vc = node.vc.merged(info.sender_vc)
        affected = sorted({page
                           for record in info.records
                           for page in record.pages})
        yield from self.resolve_pages(affected)

    # -- barriers ----------------------------------------------------------------

    def pre_barrier(self) -> Generator:
        yield from self.seal_from_app()
        if self.push_at_barrier:
            yield from self.push_updates(wait_acks=self.push_needs_acks)

    def apply_depart(self, payload: dict) -> Generator:
        node = self.node
        self.incorporate_records(payload["records"])
        node.vc = node.vc.merged(payload["vc"])
        self.last_barrier_vc = payload["vc"]
        # The master's departure carried all our notices to everyone.
        self.unpropagated = {}
        affected = sorted({page
                           for record in payload["records"]
                           for page in record.pages})
        yield from self.resolve_pages(affected)

    def validate_all(self) -> Generator:
        """GC support: fetch and apply every outstanding due notice so
        the whole page table is current with the latest barrier."""
        node = self.node
        for page in node.pagetable.pages():
            copy = node.pagetable.copies.get(page)
            if copy is None:
                continue
            if self.due_notices(copy):
                yield from self.fetch_pending(page)
            if not copy.valid and not copy.pending_notices:
                copy.valid = True

    def collect_garbage(self) -> Generator:
        """Base prune plus lazy-specific memo release.

        The due/stray partition memos (``PageCopy.due_cache``) and the
        cached per-record notice lists hold references into the
        pruned history; dropping the memos here lets the collected
        records, notices, and their cached RDIF blobs actually be
        freed.  Pure cache invalidation — the partitions are
        recomputed on demand with identical results."""
        yield from super().collect_garbage()
        for copy in self.node.pagetable.copies.values():
            copy.due_cache = None

    # -- the policy point: what to do with noticed pages ---------------------------

    def resolve_pages(self, pages: List[int]) -> Generator:
        raise NotImplementedError

    def _seal_if_any_dirty(self, pages: List[int]) -> Generator:
        node = self.node
        for page in pages:
            copy = node.pagetable.copies.get(page)
            if copy is not None and copy.dirty:
                yield from self.seal_from_app()
                return


class LazyInvalidate(LazyBase):
    """LI: invalidate on notice; fetch diffs at the next miss."""

    name = "li"
    piggyback_diffs = False
    push_at_barrier = False

    def resolve_pages(self, pages: List[int]) -> Generator:
        node = self.node
        yield from self._seal_if_any_dirty(pages)
        for page in pages:
            copy = node.pagetable.copies.get(page)
            if copy is not None and self.due_notices(copy):
                self.invalidate_page(page)


class LazyUpdate(LazyBase):
    """LU: never invalidate; pull every noticed diff at the acquire."""

    name = "lu"
    piggyback_diffs = True
    push_at_barrier = True
    push_needs_acks = True

    def resolve_pages(self, pages: List[int]) -> Generator:
        node = self.node
        for page in pages:
            copy = node.pagetable.copies.get(page)
            if copy is not None and self.due_notices(copy):
                yield from self.fetch_pending(page)


class LazyHybrid(LazyBase):
    """LH: apply piggybacked diffs, invalidate uncovered pages."""

    name = "lh"
    piggyback_diffs = True
    push_at_barrier = True
    push_needs_acks = False

    def resolve_pages(self, pages: List[int]) -> Generator:
        node = self.node
        yield from self._seal_if_any_dirty(pages)
        for page in pages:
            copy = node.pagetable.copies.get(page)
            if copy is None or not self.due_notices(copy):
                continue
            if not copy.dirty and self.apply_pending(copy):
                continue
            if copy.dirty:
                # Racy corner: a write landed between the dirtiness
                # check and here; seal again and retry once.
                yield from self.seal_from_app()
                if self.apply_pending(copy):
                    continue
            self.invalidate_page(page)
