#!/usr/bin/env python
"""The paper's future work, implemented: multithreading for latency
hiding.

The paper closes (section 8): synchronization latency is the wall for
software DSM, and "multithreading is a common technique for masking
the latency of expensive operations, but the attendant increase in
communication could prove prohibitive."

This script runs Cholesky — whose 16-processor run spends >80% of its
time waiting for locks — with 1, 2, and 4 worker threads per node and
prints the measured tradeoff: a second thread hides stalls behind
computation; a fourth drowns in its own consistency traffic.

Run:  python examples/multithreading.py
"""

from repro.analysis.extensions import multithreading_study


def main() -> None:
    study = multithreading_study(nprocs=8, thread_counts=(1, 2, 4),
                                 scale="bench")
    print("Cholesky, 8 processors, lazy hybrid, 100 Mbit ATM\n")
    print(f"{'threads/node':>13s} {'speedup':>8s} {'messages':>9s} "
          f"{'elapsed Mcycles':>16s}")
    for threads, row in sorted(study.items()):
        print(f"{threads:>13d} {row['speedup']:8.2f} "
              f"{row['messages']:9.0f} "
              f"{row['elapsed_cycles'] / 1e6:16.1f}")

    one, two, four = (study[t]["elapsed_cycles"] for t in (1, 2, 4))
    print(f"\n2 threads/node: {one / two - 1:+.0%} wall-clock "
          "(lock stalls overlapped)")
    print(f"4 threads/node: {one / four - 1:+.0%} wall-clock, "
          f"{study[4]['messages'] / study[1]['messages']:.1f}x the "
          "messages")
    print("\nExactly the paper's predicted tension: some latency can "
          "be hidden,\nbut each extra thread multiplies the "
          "consistency traffic.")


if __name__ == "__main__":
    main()
