#!/usr/bin/env python
"""Jacobi scaling study: grain size vs communication cost.

Sweeps the grid size to show the compute/communication tradeoff that
decides whether a software DSM pays off: small grids are
communication-bound (no speedup), large grids amortize the page and
barrier traffic and approach linear scaling on the ATM.

Run:  python examples/jacobi_scaling.py
"""

from repro import MachineConfig, NetworkConfig, run_app
from repro.apps import Jacobi


def main() -> None:
    proc_counts = [2, 4, 8, 16]
    grids = [64, 128, 256, 512]
    iterations = 4

    print("Jacobi on 100 Mbit ATM, lazy hybrid — speedups\n")
    print(f"{'grid':>6s}" + "".join(f"{p:>8d}p" for p in proc_counts))
    for n in grids:
        baseline = run_app(Jacobi(n=n, iterations=iterations),
                           MachineConfig(nprocs=1))
        cells = []
        for nprocs in proc_counts:
            config = MachineConfig(nprocs=nprocs,
                                   network=NetworkConfig.atm())
            result = run_app(Jacobi(n=n, iterations=iterations),
                             config, protocol="lh")
            cells.append(f"{result.speedup_over(baseline):8.2f}")
        print(f"{n:>4d}^2" + "".join(cells))

    print("\nEach element costs ~20 cycles; each boundary exchange "
          "costs a page-\nsized diff plus per-message software "
          "overhead.  Below ~128^2 the DSM\noverhead eats the "
          "parallelism; by 512^2 (the paper's size) the grain\n"
          "(~324K cycles per synchronization at 16 processors) "
          "scales nearly\nlinearly — Figure 7 of the paper.")


if __name__ == "__main__":
    main()
