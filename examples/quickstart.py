#!/usr/bin/env python
"""Quickstart: a shared counter on a 4-node software DSM.

Builds a simulated 4-processor cluster joined by a 100 Mbit ATM
switch, runs the same little program on every node under the paper's
lazy hybrid protocol, and prints what the DSM actually did.

Run:  python examples/quickstart.py
"""

from repro import DsmApi, Machine, MachineConfig, NetworkConfig


def main() -> None:
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    machine = Machine(config, protocol="lh")

    # One shared page holding our counter.
    counter = machine.allocate("counter", nwords=16)

    def worker(api: DsmApi, proc: int):
        """Each node increments the counter 5 times under a lock,
        then everyone meets at a barrier and reads the total."""
        for _ in range(5):
            yield from api.acquire(0)
            value = yield from api.read(counter, 0)
            yield from api.compute(2_000)  # pretend to work
            yield from api.write(counter, 0, value + 1)
            yield from api.release(0)
        yield from api.barrier(0)
        total = yield from api.read(counter, 0)
        return total

    result = machine.run(
        lambda proc: worker(DsmApi(machine.nodes[proc]), proc))

    print("final counter on every node:", result.app_result)
    assert result.app_result == [20.0] * 4

    ms = result.elapsed_cycles / config.cycles_per_second * 1e3
    print(f"simulated time      : {result.elapsed_cycles:,.0f} cycles "
          f"({ms:.2f} ms at {config.cpu_mhz:.0f} MHz)")
    print(f"messages exchanged  : {result.total_messages} "
          f"({result.sync_messages} for synchronization)")
    print(f"shared data moved   : {result.data_kbytes:.1f} KB")
    print(f"access misses       : {result.access_misses}")
    print(f"diffs created       : {result.diffs_created}")
    print(f"lock wait time      : {result.lock_wait_cycles:,.0f} cycles")


if __name__ == "__main__":
    main()
