#!/usr/bin/env python
"""Network study: the paper's Ethernet-vs-ATM argument, live.

Runs Jacobi (coarse-grained) across processor counts on the three
network generations the paper compares — a 10 Mbit shared Ethernet, a
collision-free variant, and a 100 Mbit ATM crossbar — and shows why
1993's emerging point-to-point networks changed the viability of
software DSM.

Run:  python examples/network_study.py
"""

from repro import MachineConfig, NetworkConfig, run_app
from repro.apps import Jacobi


def fresh_app():
    return Jacobi(n=256, iterations=4)


def main() -> None:
    networks = [
        ("10Mb Ethernet", NetworkConfig.ethernet(collisions=True)),
        ("10Mb Ethernet, no collisions",
         NetworkConfig.ethernet(collisions=False)),
        ("100Mb ATM crossbar", NetworkConfig.atm()),
    ]
    proc_counts = [1, 2, 4, 8, 16]

    baseline = run_app(fresh_app(), MachineConfig(nprocs=1))
    print(f"Jacobi {fresh_app().n}x{fresh_app().n}, lazy hybrid\n")
    header = f"{'network':<30s}" + "".join(f"{p:>7d}p"
                                           for p in proc_counts)
    print(header)
    for name, network in networks:
        cells = []
        for nprocs in proc_counts:
            if nprocs == 1:
                cells.append(f"{1.0:7.2f}")
                continue
            config = MachineConfig(nprocs=nprocs, network=network)
            result = run_app(fresh_app(), config, protocol="lh")
            cells.append(f"{result.speedup_over(baseline):7.2f}")
        print(f"{name:<30s}" + "".join(cells))

    print("\nThe shared medium saturates (speedup peaks early, then "
          "declines);\nthe crossbar keeps scaling because disjoint "
          "pairs of processors\ncommunicate concurrently — the "
          "paper's core architectural point.")


if __name__ == "__main__":
    main()
