#!/usr/bin/env python
"""Tour of the repro.obs metrics registry and event tracer.

Runs Jacobi under the lazy hybrid protocol on the 100 Mbit ATM
network with a JSONL trace sink attached, then shows the three ways
to read a run's observability data:

1. RunResult helpers (`metric_total` / `metric_by`) — one number;
2. the registry dump (`as_text` / `dump`) — the full stats schema;
3. trace replay (`read_jsonl`) — the per-event timeline.

The schema is documented in docs/observability.md.

Run:  PYTHONPATH=src python examples/metrics_tour.py
"""

import os
import tempfile

from repro import (JsonlSink, MachineConfig, NetworkConfig,
                   Observability, Tracer, read_jsonl, run_app)
from repro.apps import create_app


def main() -> None:
    trace_path = os.path.join(tempfile.gettempdir(),
                              "metrics_tour_trace.jsonl")

    # An Observability context with a real sink replaces the default
    # (free) NullSink tracer; the registry comes along automatically.
    obs = Observability(tracer=Tracer(JsonlSink(trace_path)))
    result = run_app(create_app("jacobi", n=48, iterations=3),
                     MachineConfig(nprocs=4,
                                   network=NetworkConfig.atm()),
                     protocol="lh", obs=obs)
    obs.close()  # flush the JSONL file

    # 1. Single numbers straight off the RunResult.
    print("== headline numbers (registry-backed) ==")
    total = result.metric_total("dsm.messages_total")
    sync = result.registry_sync_messages()
    print(f"messages: {total:.0f} total, {sync:.0f} "
          f"({sync / total:.0%}) for synchronization")
    print(f"data moved: "
          f"{result.metric_total('dsm.data_bytes_total') / 1024:.1f} KB, "
          f"diffs created: "
          f"{result.metric_total('dsm.diffs_created_total'):.0f}")

    print("\n== messages by type ==")
    by_type = result.metric_by("dsm.messages_total", "msg_type")
    for msg_type, count in sorted(by_type.items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {msg_type:<16s} {count:6.0f}")

    # 2. The full dump — what `python -m repro stats` prints.
    print("\n== registry dump (non-empty series) ==")
    print(result.registry.as_text(skip_empty=True))

    # 3. Replay the JSONL trace.
    events = list(read_jsonl(trace_path))
    print(f"\n== trace replay: {len(events)} events "
          f"in {trace_path} ==")
    for event in events[:10]:
        print(f"  t={event.ts:>12.0f}  {event.name:<20s} "
              f"{event.fields}")
    print("  ...")
    # Count event kinds seen across the run.
    kinds = {}
    for event in events:
        kinds[event.name] = kinds.get(event.name, 0) + 1
    for name, count in sorted(kinds.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<20s} x{count}")


if __name__ == "__main__":
    main()
