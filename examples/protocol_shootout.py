#!/usr/bin/env python
"""Protocol shootout: Water under all five RC protocols.

Reproduces the heart of the paper in one script — for a medium-grained
program, the choice of release-consistency protocol is the difference
between scaling and thrashing.  Prints speedup, messages, and data for
EI, EU, LI, LU, and the paper's new lazy hybrid at a chosen processor
count.

Run:  python examples/protocol_shootout.py [nprocs]
"""

import sys

from repro import (MachineConfig, NetworkConfig, PROTOCOL_NAMES,
                   run_app, sequential_baseline)
from repro.apps import Water


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    config = MachineConfig(nprocs=nprocs, network=NetworkConfig.atm())

    def fresh_app():
        return Water(nmols=64, steps=2, cycles_per_pair=3700)

    print(f"Water ({fresh_app().nmols} molecules, 2 steps) on "
          f"{nprocs} processors, 100 Mbit ATM\n")
    baseline = sequential_baseline(fresh_app, config)
    print(f"{'proto':>6s} {'speedup':>8s} {'messages':>9s} "
          f"{'data KB':>8s} {'misses':>7s} {'lock wait Mcycles':>18s}")
    rows = []
    for protocol in PROTOCOL_NAMES:
        result = run_app(fresh_app(), config, protocol=protocol)
        rows.append((protocol, result.speedup_over(baseline), result))
        print(f"{protocol:>6s} {rows[-1][1]:8.2f} "
              f"{result.total_messages:9d} {result.data_kbytes:8.1f} "
              f"{result.access_misses:7d} "
              f"{result.lock_wait_cycles / 1e6:18.1f}")

    best = max(rows, key=lambda r: r[1])
    worst = min(rows, key=lambda r: r[1])
    print(f"\nbest protocol : {best[0]} ({best[1]:.2f}x)")
    print(f"worst protocol: {worst[0]} ({worst[1]:.2f}x)")
    print(f"gap           : {best[1] / worst[1]:.1f}x  "
          "(paper: >3x between LH and EU at 16 processors)")


if __name__ == "__main__":
    main()
