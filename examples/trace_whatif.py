#!/usr/bin/env python
"""Trace what-if: record once, re-simulate everywhere.

Records a Water run's complete shared-memory trace under the lazy
hybrid, then *replays the identical operation stream* under every
protocol and on every network generation — the classic trace-driven
methodology, plus the caveat that made the paper use execution-driven
simulation instead (a trace cannot change its control flow when the
protocol would have changed the values the program saw).

Run:  python examples/trace_whatif.py
"""

from repro import MachineConfig, NetworkConfig, PROTOCOL_NAMES
from repro.apps import Water
from repro.trace import record_app, replay_trace


def main() -> None:
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    app = Water(nmols=32, steps=2)
    trace, original = record_app(app, config, protocol="lh")
    print(f"recorded: {trace.summary()}")
    print(f"original run: {original.total_messages} msgs, "
          f"{original.elapsed_cycles / 1e6:.1f} Mcycles\n")

    print("replaying the same trace under every protocol "
          "(100 Mbit ATM):")
    for protocol in PROTOCOL_NAMES:
        replayed = replay_trace(trace, config, protocol=protocol)
        print(f"  {protocol:>3s}: {replayed.total_messages:6d} msgs, "
              f"{replayed.data_kbytes:7.1f} KB, "
              f"{replayed.elapsed_cycles / 1e6:6.1f} Mcycles")

    print("\nreplaying under LH on every network:")
    for name, network in (
            ("10Mb Ethernet", NetworkConfig.ethernet()),
            ("100Mb ATM", NetworkConfig.atm()),
            ("1Gb ATM", NetworkConfig.atm(1000.0))):
        replayed = replay_trace(
            trace, MachineConfig(nprocs=4, network=network),
            protocol="lh")
        print(f"  {name:<14s}: "
              f"{replayed.elapsed_cycles / 1e6:6.1f} Mcycles")

    print("\nCaveat (why the paper simulated execution-driven): the "
          "trace replays\nthe *recorded* run's decisions — it cannot "
          "model how a different\nprotocol's staleness would have "
          "changed a value-dependent search.")


if __name__ == "__main__":
    main()
