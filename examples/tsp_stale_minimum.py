#!/usr/bin/env python
"""The stale-minimum effect (paper section 6.2), demonstrated.

TSP's branch-and-bound reads the global minimum *without*
synchronization to prune its search.  Under an eager protocol every
lock release pushes the fresh minimum to all cachers, so remote
processors rarely see a stale bound; under a lazy protocol the local
copy only updates at the next acquire, so processors prune against
stale bounds and explore more unpromising tours.

This script runs the identical TSP instance under eager update and
lazy invalidate and compares how many search nodes each visited — the
measurable cause of eager TSP's edge in Figure 10.

Run:  python examples/tsp_stale_minimum.py
"""

from repro import MachineConfig, NetworkConfig, run_app
from repro.apps import Tsp


def main() -> None:
    config = MachineConfig(nprocs=8, network=NetworkConfig.atm())
    print("TSP, 10 cities, 8 processors, 100 Mbit ATM\n")
    results = {}
    for protocol, label in (("eu", "eager update"),
                            ("lh", "lazy hybrid"),
                            ("li", "lazy invalidate")):
        app = Tsp(ncities=10, seed=42, cycles_per_node=1000)
        result = run_app(app, config, protocol=protocol)
        explored = app.total_explored(result)
        optimum = min(r["min"] for r in result.app_result)
        results[protocol] = explored
        print(f"{label:<16s}: optimum={optimum:8.2f}  "
              f"search nodes visited={explored:7d}  "
              f"simulated Mcycles={result.elapsed_cycles / 1e6:7.1f}")

    extra = results["li"] / results["eu"] - 1.0
    print(f"\nlazy invalidate explored {extra:+.1%} search nodes vs "
          "eager update\n(every protocol still finds the same optimal "
          "tour — staleness costs\nwork, not correctness)")


if __name__ == "__main__":
    main()
