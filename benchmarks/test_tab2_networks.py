"""Table 2: speedups with different network characteristics (LH, 16p).

Paper's claims:

- the Ethernet is hopeless for modern processors (serialization,
  collisions, low bandwidth) even for coarse-grained Jacobi;
- removing collisions alone helps, but a 10 Mbit *point-to-point*
  network already beats a collision-free 10 Mbit Ethernet for Jacobi —
  most of the ATM's benefit for this program is network concurrency,
  not raw bandwidth;
- Water, whose communication is irregular, needs both concurrency and
  bandwidth;
- going from 100 Mbit to 1 Gbit barely helps at 40 MHz: the software
  overhead has become the bottleneck.
"""

from benchmarks.conftest import SCALE, run_once
from repro.analysis import format_matrix, tab2_networks


def test_tab2_network_characteristics(benchmark):
    rows = run_once(benchmark, lambda: tab2_networks(scale=SCALE,
                                                     nprocs=16))
    print()
    print(format_matrix("Table 2: speedups on five networks "
                        "(LH, 16 procs)", rows,
                        col_order=["jacobi", "water"]))

    eth = rows["10Mb Ethernet w/ coll"]
    eth_nc = rows["10Mb Ethernet w/o coll"]
    atm10 = rows["10Mb ATM"]
    atm100 = rows["100Mb ATM"]
    atm1000 = rows["1Gb ATM"]

    for app in ("jacobi", "water"):
        # Collisions only ever hurt.
        assert eth_nc[app] >= eth[app], app
        # Concurrency at equal bandwidth is a big win.
        assert atm10[app] > 1.5 * eth_nc[app], app
        # More bandwidth helps further...
        assert atm100[app] > atm10[app], app
        # ...but the last 10x is mostly wasted: software overhead
        # dominates (paper: "does not improve performance
        # significantly with a 40 MHz processor").
        gain_100 = atm100[app] / atm10[app]
        gain_1000 = atm1000[app] / atm100[app]
        assert gain_1000 < gain_100, app
        assert gain_1000 < 1.35, app
    # The ATM restores real scalability for the coarse-grained app.
    assert atm100["jacobi"] > 8.0
