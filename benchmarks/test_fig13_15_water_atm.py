"""Figures 13-15: Water on the 100 Mbit ATM.

Paper: the medium-grained program where *protocol choice matters most*.
LH performs best — the molecules' migratory behaviour lets the hybrid
piggyback exactly the data the acquirer is about to touch, cutting
access misses.  The lazy protocols beat the eager ones, and EU sends
an order of magnitude more messages than any lazy protocol (91% of its
messages are updates pushed at lock releases).  At 16 processors the
best/worst gap exceeds 3x.
"""

from benchmarks.conftest import PROCS, SCALE, run_once
from repro.analysis import fig13_15_water_atm, format_curve_table


def test_fig13_15_water_atm(benchmark):
    result = run_once(benchmark,
                      lambda: fig13_15_water_atm(scale=SCALE,
                                                 proc_counts=PROCS))
    print()
    print(format_curve_table(result, "speedup"))
    print(format_curve_table(result, "messages", fmt="{:8.0f}"))
    print(format_curve_table(result, "data_kbytes", fmt="{:8.0f}"))

    speedup = {p: c.speedup[16] for p, c in result.curves.items()}
    messages = {p: c.messages[16] for p, c in result.curves.items()}
    # Shape 1 (fig 13): the hybrid wins (or ties LU within noise).
    best = max(speedup, key=speedup.get)
    assert best in ("lh", "lu"), f"best was {best}"
    assert speedup["lh"] >= 0.95 * speedup[best]
    # Shape 2 (fig 13): lazy beats eager, decisively.
    assert min(speedup["lh"], speedup["li"], speedup["lu"]) \
        > max(speedup["ei"], speedup["eu"])
    # Shape 3 (paper: >3x between best and worst at 16 procs).
    assert speedup[best] / min(speedup.values()) > 3.0
    # Shape 4 (fig 14): eager update floods the network with messages
    # (paper: an order of magnitude more than the lazy protocols).
    assert messages["eu"] > 5 * messages["lh"]
