"""Figure 6: Jacobi speedup on the 10 Mbit Ethernet.

Paper: the speedup peaks at 5.2 around 8 processors and declines
rapidly thereafter — with modern processors the Ethernet is no longer
viable even for coarse-grained programs.  Our page-granularity
boundary transfers move about twice the paper's per-iteration data, so
the peak lands earlier, but the signature rise-then-collapse shape and
the 16-processor collapse reproduce.
"""

from benchmarks.conftest import PROCS, SCALE, run_once
from repro.analysis import fig6_jacobi_ethernet, format_curve_table


def test_fig06_jacobi_ethernet(benchmark):
    result = run_once(benchmark,
                      lambda: fig6_jacobi_ethernet(scale=SCALE,
                                                   proc_counts=PROCS))
    print()
    print(format_curve_table(result))
    for protocol, curve in result.curves.items():
        peak = max(curve.speedup.values())
        # Shape 1: some parallelism exists at small scale...
        assert curve.speedup[2] > 1.2, protocol
        # Shape 2: ...but the Ethernet saturates: 16 processors are no
        # better than the peak, and the peak is modest.
        assert curve.speedup[16] < peak, protocol
        assert peak < 8.0, protocol
        # Shape 3: the curve declines after its peak (bandwidth bound).
        peak_at = max(curve.speedup, key=curve.speedup.get)
        assert peak_at < 16, protocol
