"""Core hot-path benchmark: events/second on fixed workloads.

Runs the pinned BENCH_core workload — Jacobi n=96 for 120 iterations
under the lazy-invalidate protocol on 8 processors over ATM — and
emits ``BENCH_core.json`` with the dispatch rate, wall time, and the
speedup against the pre-optimization baseline measured in the same
reference container.  A second test runs the large-configuration arm
— Jacobi n=128 for 40 iterations on 32 processors — and emits
``BENCH_core32.json``; it keeps the scheduler and protocol fast paths
honest where per-message vector-clock work scales with nprocs.

Methodology (docs/performance.md): the timed rounds run in a *fresh
interpreter* (the test harness's instrumentation costs a measurable
few percent), after one warm-up run, with the collector frozen the
way the lab tunes its pool workers.  The reported rate is the
**best-of-medians**: the median rate within each interpreter (robust
against single slow rounds), best across interpreters (robust against
whole slow interpreters on a shared machine).  Every per-round rate
is recorded in the JSON together with the relative spread, so a noisy
measurement is visible in the artifact instead of silently folded
into one number.  ``REPRO_BENCH_ROUNDS`` and
``REPRO_BENCH_INTERPRETERS`` override the sampling effort (CI smoke
arms run fewer of each).

A second arm runs the identical workload with an `Observability`
whose tracer holds a `NullSink` — the instrumented-but-disabled
configuration — interleaved with the plain arm inside each
interpreter; it must dispatch the identical event count and cost
under 1% on the median of paired per-round ratios (pairing inside a
round cancels machine-speed epochs that hit both arms).

Byte-identity is asserted in-process against the golden dumps
captured from the *pre-optimization* code (``tests/perf/golden/
perfcore_jacobi_li_atm8_it120.json`` and
``perfcore_jacobi_li_atm32.json``): the fast path must be faster,
not different.  The absolute events/second (and hence
``speedup_vs_baseline``) varies with the host; the byte_identical
flag and the golden-parity suite are the portable gates.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro

from benchmarks.conftest import run_once
from repro.analysis.regression import update_summary
from repro.core.config import MachineConfig, NetworkConfig
from repro.lab.spec import RunSpec
from tests.perf.parity import canonical_dump, golden_path

ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "4"))
INTERPRETERS = int(os.environ.get("REPRO_BENCH_INTERPRETERS", "3"))
_ROOT = Path(__file__).resolve().parents[1]
OUT = _ROOT / "BENCH_core.json"
OUT32 = _ROOT / "BENCH_core32.json"
SUMMARY = _ROOT / "BENCH_summary.json"

#: Best-of dispatch rate of the pre-optimization tree on each
#: workload, measured in the reference container with this harness.
#: Reference only — it does not transfer across hosts.
BASELINE_EVENTS_PER_SECOND = 40_957
BASELINE32_EVENTS_PER_SECOND = 46_659

WORKLOAD = RunSpec("jacobi", dict(n=96, iterations=120),
                   protocol="li",
                   config=MachineConfig(nprocs=8,
                                        network=NetworkConfig.atm()))

WORKLOAD32 = RunSpec("jacobi", dict(n=128, iterations=40),
                     protocol="li",
                     config=MachineConfig(nprocs=32,
                                          network=NetworkConfig.atm()))

_MEASURE = r"""
import gc, json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.apps import create_app
from repro.core.runner import run_app
from repro.lab.spec import RunSpec, execute_spec
from repro.obs import NullSink, Observability, Tracer

spec = RunSpec.from_dict(json.loads(sys.argv[2]))
rounds = int(sys.argv[3])

def plain():
    return execute_spec(spec)

def tracer_nullsink():
    # The instrumented-but-disabled arm: every emission site sees a
    # tracer whose sink is a NullSink, so the `if tracer:` guards run
    # but never build a fields dict; sampler=None is passed explicitly
    # so this arm also exercises the disabled-timeseries plumbing (the
    # engine's per-run sampler check, the machine attribute, the
    # serving pump guard).  Must cost < 1% vs plain.
    obs = Observability(tracer=Tracer(NullSink()))
    return run_app(create_app(spec.app, **spec.app_params),
                   spec.config, protocol=spec.protocol, obs=obs,
                   sampler=None)

plain()                                  # warm imports and caches
gc.collect()
if hasattr(gc, "freeze"):
    gc.freeze()
gc.set_threshold(50_000, 25, 25)         # see repro.lab._warm_worker
samples = {"plain": [], "tracer": []}
for _ in range(rounds):
    # Arms interleave inside one interpreter so a slow epoch on a
    # shared machine hits both equally.
    for arm, run in (("plain", plain), ("tracer", tracer_nullsink)):
        started = time.perf_counter()
        result = run()
        wall = time.perf_counter() - started
        events = int(result.registry.get(
            "sim.events_dispatched_total").labels().value)
        samples[arm].append([wall, events])
print(json.dumps(samples))
"""


def _measure_once(spec, rounds):
    src = str(Path(repro.__file__).resolve().parents[1])
    proc = subprocess.run(
        [sys.executable, "-c", _MEASURE, src,
         json.dumps(spec.to_dict()), str(rounds)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _median_low(values):
    """Median that is always one of the samples (keeps the reported
    rate an actually-measured round, not an average of two)."""
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def _arm_stats(samples, arm):
    """Best-of-medians plus full per-round detail for one arm."""
    per_interpreter = [[events / wall for wall, events in s[arm]]
                       for s in samples]
    medians = [_median_low(rates) for rates in per_interpreter]
    best = max(medians)
    all_rates = [rate for rates in per_interpreter for rate in rates]
    spread = (max(all_rates) - min(all_rates)) / _median_low(all_rates)
    return {
        "rate": best,
        "round_rates": [[round(rate, 1) for rate in rates]
                        for rates in per_interpreter],
        "spread": spread,
    }


def _measure(spec, rounds, interpreters):
    # Slow epochs on a shared machine last seconds — whole
    # interpreters, not single rounds — so the per-interpreter
    # medians are compared across several fresh interpreters,
    # independently per arm.
    samples = [_measure_once(spec, rounds) for _ in range(interpreters)]
    events = {e for s in samples for _w, e in s["plain"]}
    assert len(events) == 1, (
        f"non-deterministic event counts across rounds: {events}")
    return {
        "events": events.pop(),
        "plain": _arm_stats(samples, "plain"),
        "tracer": _arm_stats(samples, "tracer"),
        "tracer_events": {e for s in samples
                          for _w, e in s["tracer"]}.pop(),
    }


def _run_core_benchmark(benchmark, spec, golden_name, out_path,
                        baseline_eps, label):
    measured = run_once(benchmark, lambda: _measure(spec, ROUNDS,
                                                    INTERPRETERS))
    events = measured["events"]
    events_per_second = measured["plain"]["rate"]
    wall = events / events_per_second

    golden = Path(golden_path(golden_name))
    byte_identical = (canonical_dump(spec) + "\n"
                      == golden.read_text())
    assert byte_identical, (
        "optimized core diverged from the pre-optimization golden "
        f"dump {golden.name}")

    # The disabled-tracer arm: identical dispatch sequence (the
    # NullSink tracer must not perturb the simulation) and < 1%
    # overhead over the plain arm.  The overhead is the *median of
    # paired per-round ratios*: the arms interleave inside each round,
    # so each ratio cancels whatever machine-speed epoch that round
    # landed in — comparing the two arms' best-of-medians (picked
    # independently, possibly from different epochs) does not.
    tracer_rate = measured["tracer"]["rate"]
    assert measured["tracer_events"] == events, (
        "NullSink-tracer run dispatched a different event count")
    tracer_overhead = _median_low([
        1.0 - tracer / plain
        for plain_rates, tracer_rates in zip(
            measured["plain"]["round_rates"],
            measured["tracer"]["round_rates"])
        for plain, tracer in zip(plain_rates, tracer_rates)])
    assert tracer_overhead < 0.01, (
        f"disabled tracing costs {tracer_overhead:.1%} on the hot "
        "path (gate: < 1%)")

    record = {
        "workload": spec.to_dict(),
        "rounds": ROUNDS,
        "interpreters": INTERPRETERS,
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(events_per_second, 1),
        "round_rates": measured["plain"]["round_rates"],
        "rate_spread": round(measured["plain"]["spread"], 4),
        "baseline_events_per_second": baseline_eps,
        "speedup_vs_baseline": round(
            events_per_second / baseline_eps, 3),
        "byte_identical": byte_identical,
        "tracer_nullsink_events_per_second": round(tracer_rate, 1),
        "tracer_nullsink_overhead": round(tracer_overhead, 4),
        "tracer_round_rates": measured["tracer"]["round_rates"],
    }
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    # The normalized cross-PR trajectory (schema-versioned; the
    # regression sentinel fills in baseline verdicts later).
    update_summary(SUMMARY, label.lower().replace("bench_", ""), {
        "status": "measured",
        "events": events,
        "events_per_second": record["events_per_second"],
        "rate_spread": record["rate_spread"],
        "tracer_overhead": record["tracer_nullsink_overhead"],
        "byte_identical": byte_identical,
    })
    print(f"\n{label}: {events:,} events in {wall:.2f}s "
          f"({events_per_second:,.0f} events/s, spread "
          f"{record['rate_spread']:.1%}, "
          f"{record['speedup_vs_baseline']:.2f}x vs pre-opt "
          "reference baseline; NullSink tracer "
          f"{tracer_overhead:+.1%})")


def test_core_events_per_second(benchmark):
    _run_core_benchmark(benchmark, WORKLOAD,
                        "perfcore_jacobi_li_atm8_it120", OUT,
                        BASELINE_EVENTS_PER_SECOND, "BENCH_core")


def test_core32_events_per_second(benchmark):
    _run_core_benchmark(benchmark, WORKLOAD32,
                        "perfcore_jacobi_li_atm32", OUT32,
                        BASELINE32_EVENTS_PER_SECOND, "BENCH_core32")
