"""Core hot-path benchmark: events/second on a fixed workload.

Runs the pinned BENCH_core workload — Jacobi n=96 for 120 iterations
under the lazy-invalidate protocol on 8 processors over ATM — and
emits ``BENCH_core.json`` with the dispatch rate, wall time, and the
speedup against the pre-optimization baseline measured in the same
reference container.

Methodology (docs/performance.md): the timed rounds run in a *fresh
interpreter* (the test harness's instrumentation costs a measurable
few percent), after one warm-up run, with the collector frozen the
way the lab tunes its pool workers; the reported rate is the best of
``ROUNDS`` (the robust statistic on a noisy shared machine).

A second arm runs the identical workload with an `Observability`
whose tracer holds a `NullSink` — the instrumented-but-disabled
configuration — interleaved with the plain arm inside each
interpreter; it must dispatch the identical event count and cost
under 1%.

Byte-identity is asserted in-process against the golden dump captured
from the *pre-optimization* code (``tests/perf/golden/
perfcore_jacobi_li_atm8_it120.json``): the fast path must be faster,
not different.  The absolute events/second (and hence
``speedup_vs_baseline``) varies with the host; the byte_identical
flag and the golden-parity suite are the portable gates.
"""

import json
import subprocess
import sys
from pathlib import Path

import repro

from benchmarks.conftest import run_once
from repro.core.config import MachineConfig, NetworkConfig
from repro.lab.spec import RunSpec
from tests.perf.parity import canonical_dump, golden_path

ROUNDS = 4        # timed executions per interpreter
INTERPRETERS = 3  # fresh interpreters; best-of-all is reported
OUT = Path(__file__).resolve().parents[1] / "BENCH_core.json"

#: Best-of-rounds dispatch rate of the pre-optimization tree on this
#: workload, measured in the reference container with this exact
#: harness.  Reference only — it does not transfer across hosts.
BASELINE_EVENTS_PER_SECOND = 40_957

WORKLOAD = RunSpec("jacobi", dict(n=96, iterations=120),
                   protocol="li",
                   config=MachineConfig(nprocs=8,
                                        network=NetworkConfig.atm()))

_MEASURE = r"""
import gc, json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.apps import create_app
from repro.core.runner import run_app
from repro.lab.spec import RunSpec, execute_spec
from repro.obs import NullSink, Observability, Tracer

spec = RunSpec.from_dict(json.loads(sys.argv[2]))
rounds = int(sys.argv[3])

def plain():
    return execute_spec(spec)

def tracer_nullsink():
    # The instrumented-but-disabled arm: every emission site sees a
    # tracer whose sink is a NullSink, so the `if tracer:` guards run
    # but never build a fields dict.  Must cost < 1% vs plain.
    obs = Observability(tracer=Tracer(NullSink()))
    return run_app(create_app(spec.app, **spec.app_params),
                   spec.config, protocol=spec.protocol, obs=obs)

plain()                                  # warm imports and caches
gc.collect()
if hasattr(gc, "freeze"):
    gc.freeze()
gc.set_threshold(50_000, 25, 25)         # see repro.lab._warm_worker
best = {"plain": None, "tracer": None}
for _ in range(rounds):
    # Arms interleave inside one interpreter so a slow epoch on a
    # shared machine hits both equally.
    for arm, run in (("plain", plain), ("tracer", tracer_nullsink)):
        started = time.perf_counter()
        result = run()
        wall = time.perf_counter() - started
        events = int(result.registry.get(
            "sim.events_dispatched_total").labels().value)
        if best[arm] is None or events / wall > best[arm][1] / best[arm][0]:
            best[arm] = (wall, events)
print(json.dumps({"wall_seconds": best["plain"][0],
                  "events": best["plain"][1],
                  "tracer_wall_seconds": best["tracer"][0],
                  "tracer_events": best["tracer"][1]}))
"""


def _measure_once():
    src = str(Path(repro.__file__).resolve().parents[1])
    proc = subprocess.run(
        [sys.executable, "-c", _MEASURE, src,
         json.dumps(WORKLOAD.to_dict()), str(ROUNDS)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _measure():
    # Slow epochs on a shared machine last seconds — whole
    # interpreters, not single rounds — so the robust best-of spans
    # several fresh interpreters, independently per arm.
    samples = [_measure_once() for _ in range(INTERPRETERS)]
    best = max(samples, key=lambda s: s["events"] / s["wall_seconds"])
    best_tracer = max(samples, key=lambda s: (s["tracer_events"]
                                              / s["tracer_wall_seconds"]))
    return dict(best,
                tracer_wall_seconds=best_tracer["tracer_wall_seconds"],
                tracer_events=best_tracer["tracer_events"])


def test_core_events_per_second(benchmark):
    measured = run_once(benchmark, _measure)
    wall = measured["wall_seconds"]
    events = measured["events"]
    events_per_second = events / wall

    golden = Path(golden_path("perfcore_jacobi_li_atm8_it120"))
    byte_identical = (canonical_dump(WORKLOAD) + "\n"
                      == golden.read_text())
    assert byte_identical, (
        "optimized core diverged from the pre-optimization golden "
        f"dump {golden.name}")

    # The disabled-tracer arm: identical dispatch sequence (the
    # NullSink tracer must not perturb the simulation) and < 1%
    # overhead over the plain arm measured in the same interpreters.
    tracer_rate = (measured["tracer_events"]
                   / measured["tracer_wall_seconds"])
    assert measured["tracer_events"] == events, (
        "NullSink-tracer run dispatched a different event count")
    tracer_overhead = 1.0 - tracer_rate / events_per_second
    assert tracer_overhead < 0.01, (
        f"disabled tracing costs {tracer_overhead:.1%} on the hot "
        "path (gate: < 1%)")

    record = {
        "workload": WORKLOAD.to_dict(),
        "rounds": ROUNDS,
        "interpreters": INTERPRETERS,
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(events_per_second, 1),
        "baseline_events_per_second": BASELINE_EVENTS_PER_SECOND,
        "speedup_vs_baseline": round(
            events_per_second / BASELINE_EVENTS_PER_SECOND, 3),
        "byte_identical": byte_identical,
        "tracer_nullsink_events_per_second": round(tracer_rate, 1),
        "tracer_nullsink_overhead": round(tracer_overhead, 4),
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_core: {events:,} events in {wall:.2f}s "
          f"({events_per_second:,.0f} events/s, "
          f"{record['speedup_vs_baseline']:.2f}x vs pre-opt "
          "reference baseline; NullSink tracer "
          f"{tracer_overhead:+.1%})")
