"""Table 5: the effect of reducing the page size to 1024 bytes (LH).

Paper's claim: smaller pages reduce false sharing, but roughly the
same number of processors must still be contacted to maintain
consistency and the access-miss count rises, so the net effect on
speedup is limited — restructuring the program would pay more.
"""

from benchmarks.conftest import SCALE, run_once
from repro.analysis import format_matrix, tab5_page_size


def test_tab5_page_size(benchmark):
    table = run_once(benchmark, lambda: tab5_page_size(
        scale=SCALE, proc_counts=(8, 16)))
    print()
    for app, by_size in table.items():
        rows = {f"{size}B pages": {f"{p}p": s
                                   for p, s in by_procs.items()}
                for size, by_procs in by_size.items()}
        print(format_matrix(f"Table 5: {app} (LH)", rows,
                            col_order=["8p", "16p"]))

    for app, by_size in table.items():
        for procs in (8, 16):
            big = by_size[4096][procs]
            small = by_size[1024][procs]
            # Limited, mixed effect: less false sharing per page but
            # more misses; never a free order-of-magnitude win (the
            # fine-grained app actually loses from the extra misses).
            ratio = small / max(big, 1e-9)
            assert 0.25 < ratio < 2.2, (app, procs, big, small)
