"""Ablation benches: quantify the design choices DESIGN.md section 5
calls out, at benchmark scale."""

from benchmarks.conftest import SCALE, run_once
from repro.analysis.ablations import (ablate_diff_encoding,
                                      ablate_hybrid_heuristic,
                                      ablate_lazy_overhead_factor,
                                      ablate_lock_broadcast)


def test_abl_diff_encoding(benchmark):
    """Run-length diffs vs whole-page transfers: the diff encoding is
    what keeps update-style protocols' data volume manageable."""
    results = run_once(benchmark,
                       lambda: ablate_diff_encoding(
                           app="water", nprocs=16, scale=SCALE))
    diffs, pages = results["diffs"], results["whole_pages"]
    print(f"\ndiff encoding: {diffs.data_kbytes:.0f} KB, "
          f"{diffs.elapsed_cycles / 1e6:.1f} Mcycles | whole pages: "
          f"{pages.data_kbytes:.0f} KB, "
          f"{pages.elapsed_cycles / 1e6:.1f} Mcycles")
    assert pages.data_kbytes > 2 * diffs.data_kbytes
    assert pages.elapsed_cycles > diffs.elapsed_cycles


def test_abl_hybrid_heuristic(benchmark):
    """LH's copyset rule vs always/never piggybacking."""
    results = run_once(benchmark,
                       lambda: ablate_hybrid_heuristic(
                           app="water", nprocs=16, scale=SCALE))
    print()
    for policy, result in results.items():
        print(f"piggyback={policy:8s}: "
              f"{result.elapsed_cycles / 1e6:6.1f} Mcycles, "
              f"{result.access_misses:5d} misses, "
              f"{result.data_kbytes:7.0f} KB")
    # Never piggybacking degenerates toward LI: many more misses.
    assert results["never"].access_misses > \
        2 * results["copyset"].access_misses
    # The copyset heuristic performs at least as well as either
    # extreme on wall-clock.
    best = min(r.elapsed_cycles for r in results.values())
    assert results["copyset"].elapsed_cycles <= 1.1 * best


def test_abl_lock_broadcast(benchmark):
    """Broadcast lock requests: fewer hops on the grant path, n-1
    request messages — the paper's 'without resorting to broadcast'
    remark, quantified."""
    results = run_once(benchmark,
                       lambda: ablate_lock_broadcast(
                           app="cholesky", nprocs=8, scale=SCALE))
    fwd, bcast = results["forwarding"], results["broadcast"]
    print(f"\nforwarding: {fwd.sync_messages} sync msgs, "
          f"{fwd.elapsed_cycles / 1e6:.1f} Mcycles | broadcast: "
          f"{bcast.sync_messages} sync msgs, "
          f"{bcast.elapsed_cycles / 1e6:.1f} Mcycles")
    assert bcast.sync_messages > fwd.sync_messages


def test_abl_lazy_overhead_factor(benchmark):
    """How much of the lazy protocols' cost is the simulation's
    doubled per-byte software overhead."""
    results = run_once(benchmark,
                       lambda: ablate_lazy_overhead_factor(
                           app="water", nprocs=16, scale=SCALE))
    doubled, flat = results["doubled"], results["flat"]
    gain = doubled.elapsed_cycles / flat.elapsed_cycles
    print(f"\nlazy per-byte doubling costs {gain - 1:.1%} wall-clock "
          "on Water/LH at 16 procs")
    assert flat.elapsed_cycles < doubled.elapsed_cycles
