"""Figures 10-12: TSP on the 100 Mbit ATM.

Paper: coarse-grained, so all protocols scale, but the *eager*
protocols edge out the lazy ones — the branch-and-bound global minimum
is read without synchronization, eager releases push the fresh bound
everywhere, and staler bounds make the lazy runs explore more
unpromising tours (section 6.2).  Contention for the single tour-queue
lock wastes ~10% of a 16-processor run.
"""

from benchmarks.conftest import PROCS, SCALE, run_once
from repro.analysis import (APP_PARAMS, fig10_12_tsp_atm,
                            format_curve_table)
from repro.apps import create_app
from repro.core import MachineConfig, NetworkConfig, run_app


def test_fig10_12_tsp_atm(benchmark):
    result = run_once(benchmark,
                      lambda: fig10_12_tsp_atm(scale=SCALE,
                                               proc_counts=PROCS))
    print()
    print(format_curve_table(result, "speedup"))
    print(format_curve_table(result, "messages", fmt="{:8.0f}"))
    print(format_curve_table(result, "data_kbytes", fmt="{:8.0f}"))
    for protocol, curve in result.curves.items():
        # Shape: coarse grain scales under every protocol.
        assert curve.speedup[16] > 4.0, protocol
        assert curve.speedup[8] > 3.0, protocol


def test_stale_minimum_extra_exploration(benchmark):
    """The mechanism behind figure 10: lazy protocols read staler
    bounds and therefore visit at least as many search nodes."""
    params = APP_PARAMS[SCALE]["tsp"]
    config = MachineConfig(nprocs=8, network=NetworkConfig.atm())

    def measure():
        explored = {}
        for protocol in ("eu", "li"):
            app = create_app("tsp", **params)
            result = run_app(app, config, protocol=protocol)
            explored[protocol] = app.total_explored(result)
        return explored

    explored = run_once(benchmark, measure)
    print(f"\nsearch nodes explored: eager(eu)={explored['eu']} "
          f"lazy(li)={explored['li']}")
    assert explored["li"] >= explored["eu"]
