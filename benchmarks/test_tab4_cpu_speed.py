"""Table 4: speedups at different processor speeds (LH).

Paper's claims: Jacobi and TSP barely notice the processor speed
(little communication, and the software overhead scales *with* the
processor).  Water and Cholesky communicate enough that the fixed
network latency matters: a faster processor shrinks computation but
not wire time, so their speedup *drops* as the CPU gets faster.
"""

from benchmarks.conftest import SCALE, run_once
from repro.analysis import format_matrix, tab4_cpu_speeds


def test_tab4_processor_speeds(benchmark):
    table = run_once(benchmark, lambda: tab4_cpu_speeds(scale=SCALE,
                                                        nprocs=16))
    print()
    print(format_matrix("Table 4: LH speedups vs CPU speed (16 procs)",
                        table, col_order=[20.0, 40.0, 80.0]))

    # Coarse grain: nearly flat across a 4x CPU range.
    for app in ("jacobi", "tsp"):
        values = table[app]
        spread = max(values.values()) / max(1e-9, min(values.values()))
        assert spread < 1.6, (app, values)
    # Fine/medium grain: faster processors hurt the speedup.
    for app in ("water", "cholesky"):
        values = table[app]
        assert values[20.0] > values[80.0], (app, values)
