#!/usr/bin/env python
"""CI gate: fail when the core benchmark regresses against the
committed record.

Compares the freshly-measured ``BENCH_core.json`` (written by
``benchmarks/test_perf_core.py``; the records themselves are
gitignored) with the committed baseline record
``benchmarks/core_baseline.json``.  Fails when:

- the fresh run was not byte-identical to the golden dump, or
- ``events_per_second`` dropped more than ``--threshold`` (default
  10%) below the committed rate.

The absolute rate does not transfer across hosts
(docs/performance.md), so a cross-host comparison is noisy by
construction; the 10% threshold plus the harness's best-of-N sampling
absorbs normal jitter while still catching real hot-path regressions.
Pass ``--baseline`` to compare against a different record (e.g. a
previous CI artifact from the same runner class).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (Path(__file__).resolve().parent
                    / "core_baseline.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", default="BENCH_core.json",
                        help="freshly-measured record (default: "
                             "BENCH_core.json)")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline record (default: "
                             "benchmarks/core_baseline.json)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed fractional drop in "
                             "events_per_second (default 0.10)")
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.record).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    if not fresh.get("byte_identical"):
        print("FAIL: fresh benchmark run was not byte-identical to "
              "the golden dump")
        return 1

    fresh_rate = fresh["events_per_second"]
    base_rate = baseline["events_per_second"]
    change = fresh_rate / base_rate - 1.0
    print(f"core benchmark: {fresh_rate:,.0f} events/s vs committed "
          f"{base_rate:,.0f} ({change:+.1%}, threshold "
          f"-{args.threshold:.0%})")
    if change < -args.threshold:
        print("FAIL: events_per_second regressed beyond the "
              "threshold")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
