"""Figures 7-9: Jacobi on the 100 Mbit ATM.

Paper: speedup reaches ~14 at 16 processors; all five protocols
perform within a few percent of each other (regular nearest-neighbour
sharing); the invalidate protocols fare slightly worse (edge pages are
invalidated at barriers and must be re-fetched); EI transmits
significantly more data than anything else because its access misses
move whole pages rather than diffs.
"""

from benchmarks.conftest import PROCS, SCALE, run_once
from repro.analysis import fig7_9_jacobi_atm, format_curve_table


def test_fig07_09_jacobi_atm(benchmark):
    result = run_once(benchmark,
                      lambda: fig7_9_jacobi_atm(scale=SCALE,
                                                proc_counts=PROCS))
    print()
    print(format_curve_table(result, "speedup"))
    print(format_curve_table(result, "messages", fmt="{:8.0f}"))
    print(format_curve_table(result, "data_kbytes", fmt="{:8.0f}"))

    speedups_16 = {p: c.speedup[16] for p, c in result.curves.items()}
    # Shape 1 (fig 7): good coarse-grain speedup for every protocol.
    for protocol, speedup in speedups_16.items():
        assert speedup > 8.0, f"{protocol}: {speedup:.2f}"
    # Shape 2 (fig 7): the protocols are roughly interchangeable.
    assert max(speedups_16.values()) / min(speedups_16.values()) < 1.3
    # Shape 3 (fig 9): data volumes stay within the same magnitude for
    # every protocol.  (The paper's EI tops this chart because its
    # misses move whole pages; in our home-based EI, Jacobi's
    # block-aligned pages are homed at their writers, so EI pays in
    # page fetches what the others pay in barrier pushes.  EI's
    # whole-page data penalty shows on Water and Cholesky instead.)
    data_16 = {p: c.data_kbytes[16] for p, c in result.curves.items()}
    assert max(data_16.values()) / min(data_16.values()) < 2.0
