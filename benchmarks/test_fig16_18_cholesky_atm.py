"""Figures 16-18: Cholesky on the 100 Mbit ATM.

Paper: the fine-grained program no software DSM can save — the task
queue and per-column locks synchronize every few thousand cycles, so
speedup never exceeds ~1.3 under any protocol.  The lazy protocols
(LH in particular) still cut messages and data drastically relative to
the eager ones, whose updates/invalidations amplify the false sharing,
but the communication remains beyond what a software DSM can support.
"""

from benchmarks.conftest import PROCS, SCALE, run_once
from repro.analysis import (fig16_18_cholesky_atm, format_curve_table,
                            sync_message_fraction)


def test_fig16_18_cholesky_atm(benchmark):
    result = run_once(benchmark,
                      lambda: fig16_18_cholesky_atm(scale=SCALE,
                                                    proc_counts=PROCS))
    print()
    print(format_curve_table(result, "speedup"))
    print(format_curve_table(result, "messages", fmt="{:8.0f}"))
    print(format_curve_table(result, "data_kbytes", fmt="{:8.0f}"))

    for protocol, curve in result.curves.items():
        # Shape 1 (fig 16): essentially no speedup, ever.
        assert max(curve.speedup.values()) <= 1.5, protocol
    messages = {p: c.messages[16] for p, c in result.curves.items()}
    data = {p: c.data_kbytes[16] for p, c in result.curves.items()}
    # Shape 2 (figs 17-18): lazy moves fewer messages and less data
    # than eager.  (Idle-worker queue polling adds protocol-neutral
    # lock traffic on top, so the gap is smaller than the paper's
    # pure-consistency counts.)
    assert messages["lh"] < 0.8 * messages["ei"]
    assert messages["lh"] < 0.8 * messages["eu"]
    assert data["lh"] < data["ei"]
    assert data["li"] < data["ei"]


def test_lock_acquisition_dominates_time(benchmark):
    """Paper section 6.2: '84% of each processor's time was spent
    acquiring locks in the 16-processor LH Cholesky run'."""
    from benchmarks.conftest import SCALE
    from repro.analysis import APP_PARAMS
    from repro.apps import create_app
    from repro.core import MachineConfig, NetworkConfig, run_app

    def measure():
        result = run_app(
            create_app("cholesky", **APP_PARAMS[SCALE]["cholesky"]),
            MachineConfig(nprocs=16, network=NetworkConfig.atm()),
            protocol="lh")
        return result.time_breakdown()

    breakdown = run_once(benchmark, measure)
    print("\ncholesky/lh 16p time breakdown: "
          + ", ".join(f"{k}={v:.0%}" for k, v in breakdown.items()))
    assert breakdown["lock_wait"] > 0.6  # paper: 84%
    assert breakdown["lock_wait"] > breakdown["compute"]


def test_synchronization_dominates_messages(benchmark):
    """Paper section 6.2: 96% of Cholesky's messages (and 83% of
    Water's) exist purely for synchronization."""
    def measure():
        return {
            "cholesky": sync_message_fraction("cholesky", nprocs=16,
                                              scale=SCALE),
            "water": sync_message_fraction("water", nprocs=16,
                                           scale=SCALE),
        }

    fractions = run_once(benchmark, measure)
    print(f"\nsync message fraction: cholesky="
          f"{fractions['cholesky']:.0%} (paper 96%), "
          f"water={fractions['water']:.0%} (paper 83%)")
    assert fractions["cholesky"] > 0.6
    assert fractions["water"] > 0.5
    assert fractions["cholesky"] > fractions["water"]
