"""Harness benchmark: serial vs parallel vs warm-cache resolution.

Runs the protocol x application grid (5 protocols x Jacobi/Water, 8
processors, ATM) three ways — serially in-process, fanned over a
process pool, and again from a warm cache — asserts all three are
byte-identical, and emits ``BENCH_lab.json`` recording wall times,
cache-hit counts, and the pool's one-time startup cost (measured
separately: each pool is warmed before its timed batch).

Methodology (docs/performance.md): serial and parallel rounds are
*interleaved* and the best of each is compared, so multi-second slow
epochs on a shared machine hit both strategies instead of whichever
ran second.  The worker count is the requested ``jobs`` clamped to
twice the CPUs actually available to this process
(``Lab.effective_jobs`` over ``available_cpus()`` — affinity mask and
cgroup quota, not the host's core count), so the pool neither loses
to serial by oversubscribing a small container nor serializes on a
quota-limited runner; CI gates ``parallel_speedup > 1.0``.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import SCALE, run_once
from repro.analysis.experiments import APP_PARAMS
from repro.analysis.regression import update_summary
from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import Lab, RunSpec
from repro.protocols import PROTOCOL_NAMES

JOBS = 4
ROUNDS = 4
OUT = Path(__file__).resolve().parents[1] / "BENCH_lab.json"

#: Tiny spec executed (untimed) in each fresh pool before its timed
#: batch: later *serial* rounds run in a long-warm parent process, so
#: the workers get their lazy-initialization cold paths out of the
#: way too.  Pool spin-up cost is reported separately by design.
_WARMUP = RunSpec("jacobi", dict(n=16, iterations=1), protocol="lh",
                  config=MachineConfig(nprocs=2,
                                       network=NetworkConfig.atm()))


def _specs():
    return [RunSpec(app, APP_PARAMS[SCALE][app], protocol=protocol,
                    config=MachineConfig(nprocs=8,
                                         network=NetworkConfig.atm()))
            for app in ("jacobi", "water")
            for protocol in PROTOCOL_NAMES]


def _dumps(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


def _serial_round(specs, cache_dir):
    # The serial lab writes its own disk cache so both strategies pay
    # identical serialization/cache costs (the speedup then isolates
    # the executor, not cache asymmetry).
    lab = Lab(cache_dir=cache_dir)
    started = time.perf_counter()
    results = lab.run_many(specs)
    return time.perf_counter() - started, results


def _parallel_round(specs, cache_dir):
    with Lab(jobs=JOBS, cache_dir=cache_dir) as lab:
        startup = lab.warm()
        lab.run_many([_WARMUP])
        warmup_executed = lab.stats()["executed"]
        effective = lab.effective_jobs
        started = time.perf_counter()
        results = lab.run_many(specs)
        wall = time.perf_counter() - started
        stats = lab.stats()
        stats["executed"] -= warmup_executed
    return wall, results, startup, effective, stats


def test_lab_parallel_and_warm_cache(benchmark, tmp_path):
    specs = _specs()

    serial_walls, parallel_walls, startups = [], [], []
    serial = parallel = None
    effective_jobs = None
    parallel_stats = None
    for i in range(ROUNDS):
        if i == 0:
            wall, serial = run_once(
                benchmark,
                lambda: _serial_round(specs, tmp_path / "serial-0"))
        else:
            wall, results = _serial_round(specs,
                                          tmp_path / f"serial-{i}")
            assert _dumps(results) == _dumps(serial)
        serial_walls.append(wall)

        cache = tmp_path / f"parallel-{i}"
        (wall, results, startup,
         effective_jobs, parallel_stats) = _parallel_round(specs, cache)
        if parallel is None:
            parallel = results
        else:
            assert _dumps(results) == _dumps(parallel)
        parallel_walls.append(wall)
        startups.append(startup)

    # Warm-cache pass over the last parallel round's cache directory.
    started = time.perf_counter()
    with Lab(jobs=JOBS, cache_dir=tmp_path / f"parallel-{ROUNDS - 1}") \
            as lab:
        warm = lab.run_many(specs)
        warm_stats = lab.stats()
    warm_wall = time.perf_counter() - started

    assert _dumps(parallel) == _dumps(serial)
    assert _dumps(warm) == _dumps(serial)
    assert warm_stats["executed"] == 0
    assert warm_stats["cache_hits_disk"] == len(specs)

    serial_wall = min(serial_walls)
    parallel_wall = min(parallel_walls)
    record = {
        "scale": SCALE,
        "runs": len(specs),
        "rounds": ROUNDS,
        "jobs": JOBS,
        "effective_jobs": effective_jobs,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "parallel_speedup": round(serial_wall / parallel_wall, 3),
        "executor_startup_seconds": round(min(startups), 3),
        "parallel_executed": parallel_stats["executed"],
        "warm_wall_seconds": round(warm_wall, 3),
        "warm_cache_hits_disk": warm_stats["cache_hits_disk"],
        "warm_executed": warm_stats["executed"],
        "byte_identical": True,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    update_summary(OUT.parent / "BENCH_summary.json", "lab", {
        "status": "measured",
        "parallel_speedup": record["parallel_speedup"],
        "effective_jobs": effective_jobs,
        "executor_startup_seconds":
            record["executor_startup_seconds"],
        "warm_executed": warm_stats["executed"],
        "byte_identical": True,
    })
    print(f"\nBENCH_lab: serial {serial_wall:.1f}s, "
          f"jobs={JOBS} (effective {effective_jobs}) "
          f"{parallel_wall:.1f}s "
          f"({record['parallel_speedup']:.2f}x, "
          f"startup {record['executor_startup_seconds']:.2f}s), "
          f"warm {warm_wall:.2f}s with "
          f"{warm_stats['cache_hits_disk']:.0f} disk hits")
