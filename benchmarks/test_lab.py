"""Harness benchmark: serial vs parallel vs warm-cache resolution.

Runs the protocol x application grid (5 protocols x Jacobi/Water, 8
processors, ATM) three ways — serially in-process, fanned over a
4-worker pool, and again from a warm cache — asserts all three are
byte-identical, and emits ``BENCH_lab.json`` recording wall times and
cache-hit counts, seeding the repo's perf trajectory.  The parallel
speedup itself is hardware-dependent (this container may be
single-core); the CI acceptance gate for the 0.6x bound runs on the
4-core runner.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import SCALE, run_once
from repro.analysis.experiments import APP_PARAMS
from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import Lab, RunSpec
from repro.protocols import PROTOCOL_NAMES

JOBS = 4
OUT = Path(__file__).resolve().parents[1] / "BENCH_lab.json"


def _specs():
    return [RunSpec(app, APP_PARAMS[SCALE][app], protocol=protocol,
                    config=MachineConfig(nprocs=8,
                                         network=NetworkConfig.atm()))
            for app in ("jacobi", "water")
            for protocol in PROTOCOL_NAMES]


def _dumps(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


def test_lab_parallel_and_warm_cache(benchmark, tmp_path):
    specs = _specs()
    cache = tmp_path / "cache"

    serial_lab = Lab()
    started = time.perf_counter()
    serial = run_once(benchmark, lambda: serial_lab.run_many(specs))
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    with Lab(jobs=JOBS, cache_dir=cache) as lab:
        parallel = lab.run_many(specs)
        parallel_stats = lab.stats()
    parallel_wall = time.perf_counter() - started

    started = time.perf_counter()
    with Lab(jobs=JOBS, cache_dir=cache) as lab:
        warm = lab.run_many(specs)
        warm_stats = lab.stats()
    warm_wall = time.perf_counter() - started

    assert _dumps(parallel) == _dumps(serial)
    assert _dumps(warm) == _dumps(serial)
    assert warm_stats["executed"] == 0
    assert warm_stats["cache_hits_disk"] == len(specs)

    record = {
        "scale": SCALE,
        "runs": len(specs),
        "jobs": JOBS,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "parallel_speedup": round(serial_wall / parallel_wall, 3),
        "parallel_executed": parallel_stats["executed"],
        "warm_wall_seconds": round(warm_wall, 3),
        "warm_cache_hits_disk": warm_stats["cache_hits_disk"],
        "warm_executed": warm_stats["executed"],
        "byte_identical": True,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_lab: serial {serial_wall:.1f}s, "
          f"jobs={JOBS} {parallel_wall:.1f}s "
          f"({record['parallel_speedup']:.2f}x), "
          f"warm {warm_wall:.2f}s with "
          f"{warm_stats['cache_hits_disk']:.0f} disk hits")
