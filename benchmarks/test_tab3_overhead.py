"""Table 3: speedups with zero / normal / double software overhead
(16 processors, 100 Mbit ATM).

Paper's claims:

- removing software overhead reveals the protocols' potential (an
  upper bound motivating hardware support): Water's lazy protocols
  gain ~80%, EU more than 4x;
- with zero overhead the per-message penalty vanishes, so protocols
  that move *less data* win — LI can overtake LH on Cholesky;
- doubling overhead costs every protocol, and the lazy protocols (LH
  especially) degrade the most gracefully as communication gets more
  expensive.
"""

from benchmarks.conftest import SCALE, run_once
from repro.analysis import format_matrix, tab3_overheads
from repro.protocols import PROTOCOL_NAMES


def test_tab3_software_overhead(benchmark):
    table = run_once(benchmark, lambda: tab3_overheads(scale=SCALE,
                                                       nprocs=16))
    print()
    for app, rows in table.items():
        print(format_matrix(f"Table 3: {app} speedups vs overhead "
                            "(16 procs)", rows,
                            col_order=PROTOCOL_NAMES))

    for app, rows in table.items():
        if app == "tsp":
            # Branch-and-bound work is timing-dependent (search
            # anomaly): a slower machine can get lucky with bound
            # propagation, so monotonicity does not apply.  Just
            # require that TSP keeps scaling at every overhead level.
            for label in ("zero", "normal", "double"):
                assert min(rows[label].values()) > 3.0, label
            continue
        for protocol in PROTOCOL_NAMES:
            zero = rows["zero"][protocol]
            normal = rows["normal"][protocol]
            double = rows["double"][protocol]
            # Overhead monotonically hurts (5% tolerance: changed
            # message timing perturbs network contention slightly).
            assert zero >= 0.95 * normal, (app, protocol)
            assert normal >= 0.95 * double, (app, protocol)

    # Water: the paper's headline sensitivities.
    water = table["water"]
    lazy_gain = sum(water["zero"][p] / water["normal"][p]
                    for p in ("lh", "li", "lu")) / 3
    assert lazy_gain > 1.2  # paper: ~1.8
    # EU remains far behind LH with overhead included (paper: "runs
    # three times slower than the LH protocol").
    assert water["normal"]["lh"] > 1.5 * water["normal"]["eu"]

    # With normal overhead the hybrid wins Water; with zero overhead
    # the data-lean invalidate protocols close the gap (paper: LI
    # overtakes LH on Cholesky).
    chol = table["cholesky"]
    gap_normal = chol["normal"]["lh"] / chol["normal"]["li"]
    gap_zero = chol["zero"]["lh"] / chol["zero"]["li"]
    assert gap_zero < gap_normal + 0.05
