"""Extension study: multithreading to hide lock latency (section 8).

The paper's closing conjecture: masking lock-acquisition latency with
multithreading might help fine-grained programs, "but the attendant
increase in communication could prove prohibitive in software DSMs."
This benchmark measures exactly that tradeoff on Cholesky: a second
thread per node overlaps lock stalls with computation; piling on more
threads multiplies the consistency traffic until it dominates.
"""

from benchmarks.conftest import SCALE, run_once
from repro.analysis.extensions import multithreading_study


def test_ext_multithreading_tradeoff(benchmark):
    study = run_once(benchmark,
                     lambda: multithreading_study(
                         nprocs=8, thread_counts=(1, 2, 4),
                         scale=SCALE))
    print("\n== Extension: Cholesky with T threads/node "
          "(8 procs, LH) ==")
    print(f"{'threads':>8s} {'speedup':>8s} {'messages':>9s} "
          f"{'elapsed Mcycles':>16s}")
    for threads, row in sorted(study.items()):
        print(f"{threads:>8d} {row['speedup']:8.2f} "
              f"{row['messages']:9.0f} "
              f"{row['elapsed_cycles'] / 1e6:16.1f}")

    # The paper's tension, measured: a second thread helps...
    assert study[2]["elapsed_cycles"] < study[1]["elapsed_cycles"]
    # ...but more threads drown in their own communication.
    assert study[4]["messages"] > 1.4 * study[1]["messages"]
    assert study[4]["elapsed_cycles"] > study[2]["elapsed_cycles"]
