"""Table 1: message costs of the shared-memory operations.

Micro-scenarios isolate each operation and check the measured message
counts against the paper's closed forms (2m misses, 3-message lock
transfers, free lazy releases vs 2c eager releases, 2(n-1) barriers
plus u / 2u / v protocol-specific terms).
"""

from benchmarks.conftest import run_once
from repro.analysis.table1 import EXPECTED, run_table1


def test_tab1_message_costs(benchmark):
    rows = run_once(benchmark, run_table1)
    print("\n== Table 1: measured message counts ==")
    for name, row in rows.items():
        print(f"{name:22s} {row}")

    for scenario, expected in EXPECTED.items():
        for protocol, count in expected.items():
            measured = rows[scenario][protocol]
            if isinstance(measured, dict):
                measured = measured["total"]
            assert measured == count, (
                f"{scenario}/{protocol}: measured {measured}, "
                f"Table 1 says {count}")

    dirty = rows["barrier_dirty_n4"]
    n = 4
    base = 2 * (n - 1)
    # LH: 2(n-1) + u unacknowledged pushes (u = 4 neighbour cachers).
    assert dirty["lh"]["total"] == base + 4
    # LI: bare 2(n-1) (invalidation-only; notices ride the barrier).
    assert dirty["li"]["total"] == base
    # LU and EU: 2(n-1) + 2u (pushes/flushes are acknowledged).
    assert dirty["lu"]["total"] == base + 8
    assert dirty["eu"]["total"] == base + 8
    # EI: 2(n-1) + v merge messages (here each modifier updates the
    # page's home and invalidates the neighbour cacher, acknowledged).
    assert dirty["ei"]["total"] == base + 8
