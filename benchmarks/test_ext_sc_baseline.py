"""Extension study: the pre-RC baseline, quantified.

The paper's protocols exist because sequentially-consistent
single-writer DSM (Ivy, the paper's reference [13]) collapses under
false sharing: every write to a falsely-shared page ping-pongs the
whole 4 KB between writers.  This bench runs the Ivy-style 'sc'
protocol against the lazy hybrid on Water — the paper's false-sharing
stress test — and on coarse-grained Jacobi, where SC remains adequate
(which is exactly why 1989-era measurements on slow processors looked
fine)."""

from benchmarks.conftest import SCALE, run_once
from repro.analysis import APP_PARAMS
from repro.apps import create_app
from repro.core import MachineConfig, NetworkConfig, run_app


def _measure(app_name: str, protocol: str, nprocs: int = 8):
    app = create_app(app_name, **APP_PARAMS[SCALE][app_name])
    baseline = run_app(create_app(app_name,
                                  **APP_PARAMS[SCALE][app_name]),
                       MachineConfig(nprocs=1))
    result = run_app(app, MachineConfig(nprocs=nprocs,
                                        network=NetworkConfig.atm()),
                     protocol=protocol)
    return result, result.speedup_over(baseline)


def test_sc_vs_rc(benchmark):
    def measure():
        out = {}
        for app_name in ("water", "jacobi"):
            for protocol in ("sc", "lh"):
                out[(app_name, protocol)] = _measure(app_name,
                                                     protocol)
        return out

    results = run_once(benchmark, measure)
    print("\n== Ivy-style SC vs lazy hybrid (8 procs, 100Mb ATM) ==")
    for (app_name, protocol), (result, speedup) in results.items():
        print(f"{app_name:>7s}/{protocol}: speedup={speedup:5.2f}  "
              f"msgs={result.total_messages:6d}  "
              f"data={result.data_kbytes:8.0f} KB")

    water_sc = results[("water", "sc")][0]
    water_lh = results[("water", "lh")][0]
    # False sharing murders the single-writer protocol on data volume.
    assert water_sc.data_kbytes > 3 * water_lh.data_kbytes
    assert results[("water", "lh")][1] > results[("water", "sc")][1]
    # Coarse-grained Jacobi survives under SC (page-aligned blocks):
    # the pre-RC systems' published speedups were not wrong, just
    # limited to this class of programs.
    assert results[("jacobi", "sc")][1] > 3.0
