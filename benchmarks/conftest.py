"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (the simulator is
deterministic, so repetition only wastes time), prints the
paper-vs-measured table, and asserts the paper's *qualitative* shape —
who wins, roughly by how much, where the crossovers fall — rather than
absolute numbers (our substrate is a simulator, not the authors' Rice
testbed).

Scale: problem sizes follow the calibrated ``bench`` preset
(DESIGN.md section 3); set REPRO_BENCH_SCALE=large for bigger runs.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
PROCS = [1, 2, 4, 8, 16]


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round (deterministic sim)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def bench_scale():
    return SCALE
